package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"

	"jskernel/internal/sim"
)

// latencyBuckets is the number of power-of-two histogram buckets; bucket
// i counts dispatch latencies in [2^i, 2^(i+1)) virtual nanoseconds
// (bucket 0 additionally absorbs zero-latency dispatches).
const latencyBuckets = 48

// Histogram is a fixed power-of-two histogram over virtual durations.
type Histogram struct {
	Counts [latencyBuckets]uint64
	Total  uint64
	Sum    sim.Duration
	Max    sim.Duration
}

// Observe folds one duration into the histogram.
func (h *Histogram) Observe(d sim.Duration) {
	if d < 0 {
		d = 0
	}
	i := 0
	if d > 0 {
		i = bits.Len64(uint64(d)) - 1
		if i >= latencyBuckets {
			i = latencyBuckets - 1
		}
	}
	h.Counts[i]++
	h.Total++
	h.Sum += d
	if d > h.Max {
		h.Max = d
	}
}

// Mean returns the mean observed duration.
func (h *Histogram) Mean() sim.Duration {
	if h.Total == 0 {
		return 0
	}
	return h.Sum / sim.Duration(h.Total)
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) from
// the bucket boundaries.
func (h *Histogram) Quantile(q float64) sim.Duration {
	if h.Total == 0 {
		return 0
	}
	target := uint64(q * float64(h.Total))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i, c := range h.Counts {
		seen += c
		if seen >= target {
			// Upper edge of bucket i.
			return sim.Duration(uint64(1) << uint(i+1))
		}
	}
	return h.Max
}

// Metrics is the per-session metrics registry the kernel feeds while
// tracing is enabled. Counter fields are exported for direct assertion
// in tests; maps must be read through the sorted accessors so consumers
// stay deterministic.
type Metrics struct {
	// Lifecycle counters.
	Installs    uint64
	Enqueued    uint64
	Confirmed   uint64
	Dispatched  uint64
	Shed        uint64
	Cancelled   uint64
	Expired     uint64
	Panics      uint64
	Quarantines uint64
	Native      uint64

	// Policy decision counters.
	PolicyDecisions uint64

	// Interposition-overhead totals (kernel-boundary crossings charged to
	// the engine, §III-B).
	InterposeCrossings uint64
	InterposeVirtual   sim.Duration

	// DispatchLatency is the virtual time between an event's enqueue and
	// its dispatch.
	DispatchLatency Histogram

	perAPI       map[string]uint64 // enqueues per API kind
	perAction    map[string]uint64 // policy verdicts per action
	depthHWM     map[int]int       // queue-depth high-water mark per scope
	scopeThreads map[int]int       // scope → thread (from install/enqueue records)
}

func newMetrics() *Metrics {
	return &Metrics{
		perAPI:       make(map[string]uint64),
		perAction:    make(map[string]uint64),
		depthHWM:     make(map[int]int),
		scopeThreads: make(map[int]int),
	}
}

// observe folds one record into the registry.
func (m *Metrics) observe(r Record) {
	if r.Scope != 0 {
		if _, ok := m.scopeThreads[r.Scope]; !ok {
			m.scopeThreads[r.Scope] = r.Thread
		}
	}
	switch r.Op {
	case OpInstall:
		m.Installs++
	case OpEnqueue:
		m.Enqueued++
		m.perAPI[r.API]++
		if r.Depth > m.depthHWM[r.Scope] {
			m.depthHWM[r.Scope] = r.Depth
		}
	case OpPolicy:
		m.PolicyDecisions++
		m.perAction[r.Action]++
	case OpConfirm:
		m.Confirmed++
	case OpDispatch:
		m.Dispatched++
	case OpShed:
		m.Shed++
	case OpCancel:
		m.Cancelled++
	case OpExpire:
		m.Expired++
	case OpPanic:
		m.Panics++
	case OpQuarantine:
		m.Quarantines++
	case OpNative:
		m.Native++
	}
}

func (m *Metrics) observeLatency(d sim.Duration) { m.DispatchLatency.Observe(d) }

// Count is one (name, count) pair of a sorted counter dump.
type Count struct {
	Name  string `json:"name"`
	Count uint64 `json:"count"`
}

func sortedCounts(in map[string]uint64) []Count {
	keys := make([]string, 0, len(in))
	for k := range in {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Count, 0, len(keys))
	for _, k := range keys {
		out = append(out, Count{Name: k, Count: in[k]})
	}
	return out
}

// APICounts returns per-API registration counters sorted by API name.
func (m *Metrics) APICounts() []Count { return sortedCounts(m.perAPI) }

// ActionCounts returns policy verdict counters sorted by action name.
func (m *Metrics) ActionCounts() []Count { return sortedCounts(m.perAction) }

// ScopeDepth is one scope's queue-depth high-water mark.
type ScopeDepth struct {
	Scope     int `json:"scope"`
	Thread    int `json:"thread"`
	HighWater int `json:"high_water"`
}

// QueueHighWater returns per-scope queue-depth high-water marks sorted
// by scope ID.
func (m *Metrics) QueueHighWater() []ScopeDepth {
	scopes := make([]int, 0, len(m.depthHWM))
	for s := range m.depthHWM {
		scopes = append(scopes, s)
	}
	sort.Ints(scopes)
	out := make([]ScopeDepth, 0, len(scopes))
	for _, s := range scopes {
		out = append(out, ScopeDepth{Scope: s, Thread: m.scopeThreads[s], HighWater: m.depthHWM[s]})
	}
	return out
}

// histogramBucketJSON is one occupied power-of-two bucket of the
// dispatch-latency histogram; LoNs is the bucket's lower edge in
// virtual nanoseconds.
type histogramBucketJSON struct {
	LoNs  uint64 `json:"lo_ns"`
	Count uint64 `json:"count"`
}

// histogramJSON is the machine-readable dispatch-latency histogram.
type histogramJSON struct {
	Total   uint64                `json:"total"`
	MeanMs  float64               `json:"mean_ms"`
	P50Ms   float64               `json:"p50_ms"`
	P99Ms   float64               `json:"p99_ms"`
	MaxMs   float64               `json:"max_ms"`
	Buckets []histogramBucketJSON `json:"buckets,omitempty"`
}

// metricsJSON is the machine-readable registry dump; maps are exported
// through the sorted accessors so the encoding is deterministic.
type metricsJSON struct {
	Installs           uint64         `json:"installs"`
	Enqueued           uint64         `json:"enqueued"`
	Confirmed          uint64         `json:"confirmed"`
	Dispatched         uint64         `json:"dispatched"`
	Shed               uint64         `json:"shed"`
	Cancelled          uint64         `json:"cancelled"`
	Expired            uint64         `json:"expired"`
	Panics             uint64         `json:"panics"`
	Quarantines        uint64         `json:"quarantines"`
	Native             uint64         `json:"native"`
	PolicyDecisions    uint64         `json:"policy_decisions"`
	InterposeCrossings uint64         `json:"interpose_crossings"`
	InterposeVirtualMs float64        `json:"interpose_virtual_ms"`
	DispatchLatency    histogramJSON  `json:"dispatch_latency"`
	APICounts          []Count        `json:"api_counts,omitempty"`
	ActionCounts       []Count        `json:"action_counts,omitempty"`
	QueueHighWater     []ScopeDepth   `json:"queue_high_water,omitempty"`
}

// WriteJSON renders the registry as deterministic indented JSON: all
// map-backed sections go through the sorted accessors and the histogram
// dumps only its occupied buckets.
func (m *Metrics) WriteJSON(w io.Writer) error {
	if m == nil {
		_, err := io.WriteString(w, "null\n")
		return err
	}
	lat := &m.DispatchLatency
	hist := histogramJSON{
		Total:  lat.Total,
		MeanMs: lat.Mean().Milliseconds(),
		P50Ms:  lat.Quantile(0.50).Milliseconds(),
		P99Ms:  lat.Quantile(0.99).Milliseconds(),
		MaxMs:  lat.Max.Milliseconds(),
	}
	for i, c := range lat.Counts {
		if c == 0 {
			continue
		}
		lo := uint64(0)
		if i > 0 {
			lo = uint64(1) << uint(i)
		}
		hist.Buckets = append(hist.Buckets, histogramBucketJSON{LoNs: lo, Count: c})
	}
	out := metricsJSON{
		Installs:           m.Installs,
		Enqueued:           m.Enqueued,
		Confirmed:          m.Confirmed,
		Dispatched:         m.Dispatched,
		Shed:               m.Shed,
		Cancelled:          m.Cancelled,
		Expired:            m.Expired,
		Panics:             m.Panics,
		Quarantines:        m.Quarantines,
		Native:             m.Native,
		PolicyDecisions:    m.PolicyDecisions,
		InterposeCrossings: m.InterposeCrossings,
		InterposeVirtualMs: m.InterposeVirtual.Milliseconds(),
		DispatchLatency:    hist,
		APICounts:          m.APICounts(),
		ActionCounts:       m.ActionCounts(),
		QueueHighWater:     m.QueueHighWater(),
	}
	enc, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	_, err = w.Write(enc)
	return err
}

// WriteSummary renders a deterministic human-readable metrics summary.
func (m *Metrics) WriteSummary(w io.Writer) error {
	if m == nil {
		_, err := fmt.Fprintln(w, "trace metrics: (no session)")
		return err
	}
	p := func(format string, args ...any) (err error) {
		_, err = fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("trace metrics:\n"); err != nil {
		return err
	}
	if err := p("  scopes installed      %d\n", m.Installs); err != nil {
		return err
	}
	if err := p("  events: enqueued=%d dispatched=%d shed=%d cancelled=%d expired=%d confirmed=%d\n",
		m.Enqueued, m.Dispatched, m.Shed, m.Cancelled, m.Expired, m.Confirmed); err != nil {
		return err
	}
	if err := p("  survival: panics=%d quarantines=%d\n", m.Panics, m.Quarantines); err != nil {
		return err
	}
	if err := p("  policy decisions      %d\n", m.PolicyDecisions); err != nil {
		return err
	}
	for _, c := range m.ActionCounts() {
		if err := p("    action %-12s %d\n", c.Name, c.Count); err != nil {
			return err
		}
	}
	if err := p("  interposition         %d crossings, %s of virtual overhead\n",
		m.InterposeCrossings, fmtVT(m.InterposeVirtual)); err != nil {
		return err
	}
	lat := &m.DispatchLatency
	if err := p("  dispatch latency      n=%d mean=%s p50<=%s p99<=%s max=%s\n",
		lat.Total, fmtVT(lat.Mean()), fmtVT(lat.Quantile(0.50)), fmtVT(lat.Quantile(0.99)), fmtVT(lat.Max)); err != nil {
		return err
	}
	for _, d := range m.QueueHighWater() {
		if err := p("    scope %-3d thread %-3d queue high-water %d\n", d.Scope, d.Thread, d.HighWater); err != nil {
			return err
		}
	}
	if err := p("  native records        %d\n", m.Native); err != nil {
		return err
	}
	top := m.APICounts()
	for _, c := range top {
		if err := p("    api %-16s %d\n", c.Name, c.Count); err != nil {
			return err
		}
	}
	return nil
}
