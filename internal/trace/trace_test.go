package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"jskernel/internal/sim"
)

// emitLifecycle pushes one full policy→enqueue→confirm→dispatch cycle
// for the given event into s.
func emitLifecycle(s *Session, scope int, ev uint64, api string, enqAt, dispAt sim.Time) {
	s.Emit(Record{VT: enqAt, Thread: 1, Scope: scope, Op: OpPolicy, API: api, Event: ev, Action: "schedule"})
	s.Emit(Record{VT: enqAt, Thread: 1, Scope: scope, Op: OpEnqueue, API: api, Event: ev, Predicted: dispAt, Depth: 1})
	s.Emit(Record{VT: enqAt, Thread: 1, Scope: scope, Op: OpConfirm, API: api, Event: ev})
	s.Emit(Record{VT: dispAt, Thread: 1, Scope: scope, Op: OpDispatch, API: api, Event: ev})
}

func TestNilSessionIsSafe(t *testing.T) {
	var s *Session
	s.Emit(Record{Op: OpEnqueue, Event: 1, Scope: 1})
	s.CountInterpose(50 * sim.Nanosecond)
	s.Close()
	if s.Len() != 0 || s.Records() != nil || s.Metrics() != nil || s.Open() != 0 || s.Closed() {
		t.Fatalf("nil session should behave as an empty no-op sink")
	}
	s.Reset()
}

func TestSessionLifecycleMetricsAndValidate(t *testing.T) {
	s := NewSession()
	sc := s.NextScope()
	s.Emit(Record{VT: 0, Thread: 1, Scope: sc, Op: OpInstall, API: "window"})
	emitLifecycle(s, sc, 1, "setTimeout", 0, 4*sim.Millisecond)
	emitLifecycle(s, sc, 2, "fetch", 4*sim.Millisecond, 12*sim.Millisecond)
	s.CountInterpose(50 * sim.Nanosecond)
	s.CountInterpose(50 * sim.Nanosecond)

	m := s.Metrics()
	if m.Installs != 1 || m.Enqueued != 2 || m.Confirmed != 2 || m.Dispatched != 2 {
		t.Fatalf("counters: %+v", m)
	}
	if m.PolicyDecisions != 2 {
		t.Fatalf("policy decisions = %d, want 2", m.PolicyDecisions)
	}
	if m.InterposeCrossings != 2 || m.InterposeVirtual != 100*sim.Nanosecond {
		t.Fatalf("interpose: crossings=%d virtual=%v", m.InterposeCrossings, m.InterposeVirtual)
	}
	if m.DispatchLatency.Total != 2 {
		t.Fatalf("latency samples = %d, want 2", m.DispatchLatency.Total)
	}
	if got, want := m.DispatchLatency.Max, 8*sim.Millisecond; got != want {
		t.Fatalf("latency max = %v, want %v", got, want)
	}
	apis := m.APICounts()
	if len(apis) != 2 || apis[0].Name != "fetch" || apis[1].Name != "setTimeout" {
		t.Fatalf("api counts unsorted or wrong: %+v", apis)
	}
	hwm := m.QueueHighWater()
	if len(hwm) != 1 || hwm[0].Scope != sc || hwm[0].HighWater != 1 {
		t.Fatalf("queue high-water: %+v", hwm)
	}
	if s.Open() != 0 {
		t.Fatalf("open events = %d, want 0", s.Open())
	}

	rep, err := Validate(s.Records())
	if err != nil {
		t.Fatalf("validate: %v", err)
	}
	if rep.Enqueued != 2 || rep.Dispatched != 2 || rep.Open != 0 {
		t.Fatalf("report: %+v", rep)
	}

	var buf bytes.Buffer
	if err := m.WriteSummary(&buf); err != nil {
		t.Fatalf("summary: %v", err)
	}
	if !strings.Contains(buf.String(), "enqueued=2 dispatched=2") {
		t.Fatalf("summary missing lifecycle line:\n%s", buf.String())
	}
}

func TestCloseRetiresOpenEvents(t *testing.T) {
	s := NewSession()
	sc := s.NextScope()
	s.Emit(Record{VT: 0, Thread: 1, Scope: sc, Op: OpPolicy, API: "setTimeout", Event: 1, Action: "schedule"})
	s.Emit(Record{VT: 0, Thread: 1, Scope: sc, Op: OpEnqueue, API: "setTimeout", Event: 1})
	s.Emit(Record{VT: 2 * sim.Millisecond, Thread: 1, Scope: sc, Op: OpNative, API: "fetch-start"})

	if _, err := Validate(s.Records()); err == nil {
		t.Fatalf("strict validation should reject an unclosed trace with open events")
	}
	rep, err := Validator{AllowOpen: true}.Validate(s.Records())
	if err != nil {
		t.Fatalf("AllowOpen validate: %v", err)
	}
	if rep.Open != 1 {
		t.Fatalf("open = %d, want 1", rep.Open)
	}

	s.Close()
	if !s.Closed() || s.Open() != 0 {
		t.Fatalf("close did not retire open events")
	}
	recs := s.Records()
	last := recs[len(recs)-1]
	if last.Op != OpCancel || last.Action != "run-end" || last.Event != 1 {
		t.Fatalf("synthetic run-end record wrong: %+v", last)
	}
	if last.VT != 2*sim.Millisecond {
		t.Fatalf("run-end stamped %v, want session max VT %v", last.VT, 2*sim.Millisecond)
	}
	if _, err := Validate(recs); err != nil {
		t.Fatalf("validate closed trace: %v", err)
	}
	n := s.Len()
	s.Close() // idempotent
	if s.Len() != n {
		t.Fatalf("second Close emitted records")
	}
}

func TestValidatorCatchesViolations(t *testing.T) {
	base := func() []Record {
		return []Record{
			{Seq: 1, VT: 0, Thread: 1, Scope: 1, Op: OpPolicy, API: "setTimeout", Event: 1, Action: "schedule"},
			{Seq: 2, VT: 0, Thread: 1, Scope: 1, Op: OpEnqueue, API: "setTimeout", Event: 1},
			{Seq: 3, VT: 0, Thread: 1, Scope: 1, Op: OpConfirm, API: "setTimeout", Event: 1},
			{Seq: 4, VT: 4 * sim.Millisecond, Thread: 1, Scope: 1, Op: OpDispatch, API: "setTimeout", Event: 1},
		}
	}

	cases := []struct {
		name   string
		mutate func([]Record) []Record
		want   string
	}{
		{"dispatch without policy", func(r []Record) []Record {
			return []Record{r[1], r[2], r[3]}
		}, "policy decision"},
		{"dispatch without confirm", func(r []Record) []Record {
			return []Record{r[0], r[1], r[3]}
		}, "confirmation"},
		{"double enqueue", func(r []Record) []Record {
			dup := r[1]
			return []Record{r[0], r[1], r[2], dup}
		}, "enqueued twice"},
		{"record after terminal", func(r []Record) []Record {
			late := r[2]
			late.Seq = 5
			late.VT = 5 * sim.Millisecond
			return append(r, late)
		}, "after terminal"},
		{"vt backwards", func(r []Record) []Record {
			r[3].VT = -1
			return r
		}, "virtual time moved backwards"},
		{"seq not increasing", func(r []Record) []Record {
			r[2].Seq = 2
			return r
		}, "sequence"},
		{"terminal for unknown event", func(r []Record) []Record {
			return []Record{{Seq: 1, VT: 0, Thread: 1, Scope: 1, Op: OpCancel, API: "setTimeout", Event: 9}}
		}, "never enqueued"},
	}
	for _, tc := range cases {
		recs := tc.mutate(base())
		// Renumber only where the case doesn't deliberately break Seq.
		if tc.name != "seq not increasing" {
			for i := range recs {
				recs[i].Seq = uint64(i + 1)
			}
		}
		_, err := Validate(recs)
		if err == nil {
			t.Errorf("%s: validation passed, want failure", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}

	if _, err := Validate(base()); err != nil {
		t.Fatalf("baseline trace should validate: %v", err)
	}
}

func TestValidatorExemptsNativeFromMonotonicity(t *testing.T) {
	recs := []Record{
		{Seq: 1, VT: 5 * sim.Millisecond, Thread: 1, Op: OpNative, API: "fetch-done"},
		{Seq: 2, VT: 1 * sim.Millisecond, Thread: 1, Op: OpNative, API: "fetch-start"},
	}
	if _, err := Validate(recs); err != nil {
		t.Fatalf("native records must be exempt from per-thread monotonicity: %v", err)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(1)
	h.Observe(1000)
	h.Observe(-5) // clamps to zero
	if h.Total != 4 {
		t.Fatalf("total = %d", h.Total)
	}
	if h.Counts[0] != 3 { // 0, 1, clamped -5
		t.Fatalf("bucket 0 = %d, want 3", h.Counts[0])
	}
	if h.Max != 1000 {
		t.Fatalf("max = %v", h.Max)
	}
	if h.Mean() != 1001/4 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if q := h.Quantile(0.5); q > 1024 {
		t.Fatalf("p50 upper bound %v too large", q)
	}
	var empty Histogram
	if empty.Mean() != 0 || empty.Quantile(0.99) != 0 {
		t.Fatalf("empty histogram should report zeros")
	}
}

func TestChromeExportDeterministicAndValid(t *testing.T) {
	s := NewSession()
	sc := s.NextScope()
	s.Emit(Record{VT: 0, Thread: 1, Scope: sc, Op: OpInstall, API: "window"})
	emitLifecycle(s, sc, 1, "setTimeout", 0, 4*sim.Millisecond)
	s.Emit(Record{VT: 5 * sim.Millisecond, Thread: 2, Scope: sc, Op: OpNative, API: "fetch-start", URL: "https://a.example/x"})

	var a, b bytes.Buffer
	if err := WriteChrome(&a, s.Records()); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := WriteChrome(&b, s.Records()); err != nil {
		t.Fatalf("write: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("chrome export is not byte-deterministic")
	}

	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("exporter output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var sawX, sawMeta bool
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			sawX = true
			if e.Name != "setTimeout" || e.Dur != 4000 {
				t.Fatalf("dispatch span wrong: %+v", e)
			}
		case "M":
			sawMeta = true
		}
	}
	if !sawX || !sawMeta {
		t.Fatalf("export missing span or metadata events")
	}
}

func TestWriteTextStableLayout(t *testing.T) {
	s := NewSession()
	sc := s.NextScope()
	emitLifecycle(s, sc, 1, "setTimeout", 0, 4*sim.Millisecond)
	var a, b bytes.Buffer
	if err := WriteText(&a, s.Records()); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := WriteText(&b, s.Records()); err != nil {
		t.Fatalf("write: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("text export is not byte-deterministic")
	}
	lines := strings.Split(strings.TrimRight(a.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), a.String())
	}
	if !strings.Contains(lines[1], "enqueue") || !strings.Contains(lines[1], "setTimeout") {
		t.Fatalf("enqueue line malformed: %q", lines[1])
	}
	if !strings.Contains(lines[3], "dispatch") {
		t.Fatalf("dispatch line malformed: %q", lines[3])
	}
}

func TestResetKeepsScopeAllocator(t *testing.T) {
	s := NewSession()
	first := s.NextScope()
	s.Emit(Record{VT: 0, Thread: 1, Scope: first, Op: OpEnqueue, API: "x", Event: 1})
	s.Reset()
	if s.Len() != 0 || s.Open() != 0 {
		t.Fatalf("reset did not clear state")
	}
	if next := s.NextScope(); next <= first {
		t.Fatalf("scope allocator reused IDs after reset: %d <= %d", next, first)
	}
}
