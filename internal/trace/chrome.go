package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"jskernel/internal/sim"
)

// chromeEvent is one entry of the Chrome trace-event format
// (catapult "JSON Array Format"), loadable in Perfetto and
// chrome://tracing. Field order is fixed by the struct, and args maps
// are marshalled with sorted keys by encoding/json, so the exporter is
// byte-deterministic.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// usec converts a virtual timestamp to the microsecond unit the trace
// format uses.
func usec(t sim.Time) float64 { return float64(t) / float64(sim.Microsecond) }

// chromeName labels one record for the timeline.
func chromeName(r Record) string {
	switch {
	case r.Op == OpPolicy && r.API != "":
		return "policy:" + r.API
	case r.API != "":
		return r.Op.String() + ":" + r.API
	default:
		return r.Op.String()
	}
}

// chromeArgs collects a record's non-zero fields into the event's args
// payload. encoding/json emits map keys sorted, keeping output
// deterministic.
func chromeArgs(r Record) map[string]any {
	args := make(map[string]any)
	args["seq"] = r.Seq
	if r.Scope != 0 {
		args["scope"] = r.Scope
	}
	if r.Event != 0 {
		args["event"] = r.Event
	}
	if r.WorkerID != 0 {
		args["worker"] = r.WorkerID
	}
	if r.Predicted != 0 {
		args["predicted_ms"] = r.Predicted.Milliseconds()
	}
	if r.LC != 0 {
		args["lc_ms"] = r.LC.Milliseconds()
	}
	if r.Action != "" {
		args["action"] = r.Action
	}
	if r.Reason != "" {
		args["reason"] = r.Reason
	}
	if r.URL != "" {
		args["url"] = r.URL
	}
	if r.Depth != 0 {
		args["depth"] = r.Depth
	}
	if r.Value != 0 {
		args["value"] = r.Value
	}
	if r.Aux != 0 {
		args["aux"] = r.Aux
	}
	return args
}

// chromePid maps a record's run generation to a trace process ID: each
// traced environment renders as its own process (its simulator restarts
// virtual time at zero, so mixing runs on one timeline would overlap
// unrelated events). Run 0 — records with no run context — folds into
// process 1.
func chromePid(r Record) int {
	if r.Run == 0 {
		return 1
	}
	return r.Run
}

// WriteChrome renders records as Chrome trace-event JSON. Each traced
// environment (run) becomes one process; dispatches become complete
// ("X") events spanning enqueue → dispatch virtual time on the
// dispatching thread; every other record becomes a thread-scoped
// instant ("i") event. Metadata ("M") events name each process and each
// simulated thread.
//
// Events are streamed one compact JSON object per line — traces of full
// evaluation runs reach millions of records, so the exporter never
// materializes the whole file in memory. Output is byte-identical for
// identical input: struct field order fixes key order and encoding/json
// marshals the args maps with sorted keys.
func WriteChrome(w io.Writer, recs []Record) error {
	threads := make(map[uint64]bool) // pid<<32|tid
	enq := make(map[uint64]sim.Time)
	for _, r := range recs {
		threads[uint64(chromePid(r))<<32|uint64(uint32(r.Thread))] = true
		if r.Op == OpEnqueue && r.Event != 0 {
			enq[r.key()] = r.VT
		}
	}
	keys := make([]uint64, 0, len(threads))
	for k := range threads {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(ev chromeEvent) error {
		data, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = bw.Write(data)
		return err
	}

	lastPid := -1
	for _, k := range keys {
		pid, tid := int(k>>32), int(uint32(k))
		if pid != lastPid {
			name := "jskernel"
			if pid != 1 {
				name = fmt.Sprintf("jskernel run %d", pid)
			}
			if err := emit(chromeEvent{
				Name: "process_name", Ph: "M", Pid: pid,
				Args: map[string]any{"name": name},
			}); err != nil {
				return err
			}
			lastPid = pid
		}
		if err := emit(chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": fmt.Sprintf("thread %d", tid)},
		}); err != nil {
			return err
		}
	}

	for _, r := range recs {
		ev := chromeEvent{
			Name: chromeName(r),
			Cat:  r.Op.String(),
			Ph:   "i",
			Ts:   usec(r.VT),
			Pid:  chromePid(r),
			Tid:  r.Thread,
			S:    "t",
			Args: chromeArgs(r),
		}
		if r.Op == OpDispatch && r.Event != 0 {
			if start, ok := enq[r.key()]; ok {
				dur := usec(r.VT - start)
				if dur < 0 {
					dur = 0
				}
				ev = chromeEvent{
					Name: r.API,
					Cat:  "dispatch",
					Ph:   "X",
					Ts:   usec(start),
					Dur:  &dur,
					Pid:  chromePid(r),
					Tid:  r.Thread,
					Args: chromeArgs(r),
				}
			}
		}
		if err := emit(ev); err != nil {
			return err
		}
	}

	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
