package hb

import (
	"testing"

	"jskernel/internal/sim"
	"jskernel/internal/trace"
)

// acc builds one access record.
func acc(seq uint64, thread int, vt sim.Time, class string, id int64, action string) trace.Record {
	return trace.Record{Seq: seq, Run: 1, VT: vt, Thread: thread,
		Op: trace.OpAccess, API: class, Action: action, Value: id}
}

// edge builds one sync-edge record.
func edge(seq uint64, thread int, api string, id int64, action string) trace.Record {
	return trace.Record{Seq: seq, Run: 1, Thread: thread,
		Op: trace.OpEdge, API: api, Action: action, Value: id}
}

// native builds one bridged native-event record.
func native(seq uint64, thread int, api, reason string, wid int, value int64) trace.Record {
	return trace.Record{Seq: seq, Run: 1, Thread: thread, WorkerID: wid,
		Op: trace.OpNative, API: api, Reason: reason, Value: value}
}

func TestUnorderedWritesWithinWindowRace(t *testing.T) {
	got := Replay([]trace.Record{
		acc(1, 1, 0, "buffer", 7, "w"),
		acc(2, 2, 50*sim.Microsecond, "buffer", 7, "w"),
	})
	if len(got) != 1 {
		t.Fatalf("want 1 race, got %d: %+v", len(got), got)
	}
	f := got[0]
	if f.Class != "buffer" || f.Target != 7 || f.Guardian {
		t.Errorf("finding misdescribed: %+v", f)
	}
	if f.First.Context != "t1" || f.Second.Context != "t2" {
		t.Errorf("contexts: %q vs %q", f.First.Context, f.Second.Context)
	}
	if len(f.Evidence) != 2 || f.Evidence[0] != 1 || f.Evidence[1] != 2 {
		t.Errorf("evidence chain: %v", f.Evidence)
	}
	if f.Second.VC == "" {
		t.Errorf("second site must carry its vector clock")
	}
}

func TestTemporalWindowExcludesDistantPairs(t *testing.T) {
	got := Replay([]trace.Record{
		acc(1, 1, 0, "buffer", 7, "w"),
		acc(2, 2, 30*sim.Millisecond, "buffer", 7, "w"),
	})
	if len(got) != 0 {
		t.Fatalf("unordered but 30ms apart: want 0 races, got %+v", got)
	}
}

func TestOverlappingTaskIntervalsRace(t *testing.T) {
	// A stream-later access with an earlier cursor time means the two
	// tasks' execution intervals overlapped: the signed window admits it
	// (this is how the CVE-2014-3194 burst-vs-hammer interleaving looks
	// after the worker's burst task commits first).
	got := Replay([]trace.Record{
		acc(1, 2, 5*sim.Millisecond, "buffer", 7, "w"),
		acc(2, 1, 600*sim.Microsecond, "buffer", 7, "r"),
	})
	if len(got) != 1 {
		t.Fatalf("overlapping task intervals must race: got %+v", got)
	}
}

func TestGuardianIgnoresTemporalWindow(t *testing.T) {
	got := Replay([]trace.Record{
		acc(1, 1, 0, "worker", 1, "wg"),
		acc(2, 1, 30*sim.Millisecond, "worker", 1, "w"),
	})
	if len(got) != 1 {
		t.Fatalf("guardian hazard must race regardless of distance: got %+v", got)
	}
	if !got[0].Guardian {
		t.Errorf("finding not marked guardian: %+v", got[0])
	}
	if got[0].First.Context != "g:worker:1" {
		t.Errorf("guardian context: %q", got[0].First.Context)
	}
}

func TestSyncEdgeOrdersAccesses(t *testing.T) {
	got := Replay([]trace.Record{
		edge(1, 1, "sab-lock", 7, "acq"),
		acc(2, 1, 0, "buffer", 7, "w"),
		edge(3, 1, "sab-lock", 7, "rel"),
		edge(4, 2, "sab-lock", 7, "acq"),
		acc(5, 2, 10*sim.Microsecond, "buffer", 7, "w"),
		edge(6, 2, "sab-lock", 7, "rel"),
	})
	if len(got) != 0 {
		t.Fatalf("lock-ordered accesses must not race: %+v", got)
	}
}

func TestKernelLifecycleOrdersDispatch(t *testing.T) {
	// Thread 1 writes, then enqueues+confirms an event dispatched on
	// thread 2, which reads: release/acquire through the kernel queue.
	recs := []trace.Record{
		acc(1, 1, 0, "dom", 3, "w"),
		{Seq: 2, Run: 1, Thread: 1, Scope: 1, Op: trace.OpEnqueue, API: "postMessage", Event: 9},
		{Seq: 3, Run: 1, Thread: 1, Scope: 1, Op: trace.OpConfirm, API: "postMessage", Event: 9},
		{Seq: 4, Run: 1, Thread: 2, Scope: 1, Op: trace.OpDispatch, API: "postMessage", Event: 9},
		acc(5, 2, 20*sim.Microsecond, "dom", 3, "r"),
	}
	if got := Replay(recs); len(got) != 0 {
		t.Fatalf("enqueue→dispatch must order the read after the write: %+v", got)
	}
	// Without the dispatch edge the same pair races.
	if got := Replay([]trace.Record{recs[0], recs[4]}); len(got) != 1 {
		t.Fatalf("control: unordered pair should race, got %+v", got)
	}
}

func TestMessageChannelFIFOEdge(t *testing.T) {
	// postMessage send on thread 1 → delivery on thread 2 orders the
	// write before the read.
	got := Replay([]trace.Record{
		acc(1, 1, 0, "buffer", 7, "w"),
		native(2, 1, "post-message", "to-worker", 4, 0),
		native(3, 2, "message-delivered", "to-worker", 4, 0),
		acc(4, 2, 10*sim.Microsecond, "buffer", 7, "r"),
	})
	if len(got) != 0 {
		t.Fatalf("message edge must order the accesses: %+v", got)
	}
}

func TestReleasedUseDeliveryIsNotAnEdge(t *testing.T) {
	got := Replay([]trace.Record{
		acc(1, 1, 0, "buffer", 7, "w"),
		native(2, 1, "post-message", "to-parent", 4, 0),
		native(3, 2, "message-delivered", "released-use", 4, 0),
		acc(4, 2, 10*sim.Microsecond, "buffer", 7, "r"),
	})
	if len(got) != 1 {
		t.Fatalf("released-use delivery must not synchronize: %+v", got)
	}
}

func TestWorkerSpawnEdge(t *testing.T) {
	got := Replay([]trace.Record{
		acc(1, 1, 0, "dom", 3, "w"),
		native(2, 1, "worker-created", "", 4, 0),
		native(3, 2, "worker-ready", "", 4, 0),
		acc(4, 2, 10*sim.Microsecond, "dom", 3, "r"),
	})
	if len(got) != 0 {
		t.Fatalf("spawn edge must order pre-spawn writes: %+v", got)
	}
}

func TestFetchLifecycleEdge(t *testing.T) {
	got := Replay([]trace.Record{
		acc(1, 2, 0, "worker", 4, "w"),
		native(2, 2, "fetch-start", "", 4, 11),
		native(3, 1, "fetch-abort", "orphaned", 4, 11),
		acc(4, 1, 10*sim.Microsecond, "worker", 4, "w"),
	})
	if len(got) != 0 {
		t.Fatalf("fetch issue→abort edge must order the accesses: %+v", got)
	}
}

func TestReadSharingPromotesToVCFallback(t *testing.T) {
	// Two concurrent readers (epoch cannot summarize them), then an
	// unordered write: both readers must be reported against the write.
	got := Replay([]trace.Record{
		acc(1, 1, 0, "buffer", 7, "r"),
		acc(2, 2, 10*sim.Microsecond, "buffer", 7, "r"),
		acc(3, 3, 20*sim.Microsecond, "buffer", 7, "w"),
	})
	if len(got) != 2 {
		t.Fatalf("read-shared target: want 2 read-write races, got %d: %+v", len(got), got)
	}
}

func TestEpochFastPathSameReader(t *testing.T) {
	// Repeated reads by one thread stay a single epoch: a later ordered
	// write (same thread) must not race.
	got := Replay([]trace.Record{
		acc(1, 1, 0, "buffer", 7, "r"),
		acc(2, 1, 1*sim.Microsecond, "buffer", 7, "r"),
		acc(3, 1, 2*sim.Microsecond, "buffer", 7, "w"),
	})
	if len(got) != 0 {
		t.Fatalf("same-thread history must never race: %+v", got)
	}
}

func TestFindingsDeduplicated(t *testing.T) {
	// A hundred unordered write pairs between the same two contexts on
	// one target collapse to one finding.
	var recs []trace.Record
	seq := uint64(1)
	for i := 0; i < 100; i++ {
		recs = append(recs, acc(seq, 1, sim.Time(i)*sim.Microsecond, "buffer", 7, "w"))
		seq++
		recs = append(recs, acc(seq, 2, sim.Time(i)*sim.Microsecond+1, "buffer", 7, "w"))
		seq++
	}
	got := Replay(recs)
	// t1-then-t2 and t2-then-t1 orderings are distinct pairs; nothing
	// more survives dedup.
	if len(got) > 2 {
		t.Fatalf("dedup failed: %d findings", len(got))
	}
}

func TestRunsAreIndependent(t *testing.T) {
	d := NewDetector()
	r1 := acc(1, 1, 0, "buffer", 7, "w")
	r2 := acc(2, 2, 10*sim.Microsecond, "buffer", 7, "w")
	r2.Run = 2 // different run: same target key, no shared history
	d.Observe(r1)
	d.Observe(r2)
	if got := d.Findings(); len(got) != 0 {
		t.Fatalf("accesses in different runs must not race: %+v", got)
	}
}

func TestDetachedDetectorZeroAlloc(t *testing.T) {
	var d *Detector
	rec := acc(1, 1, 0, "buffer", 7, "w")
	allocs := testing.AllocsPerRun(1000, func() { d.Observe(rec) })
	if allocs != 0 {
		t.Fatalf("detached (nil) detector must add zero allocations, got %v/op", allocs)
	}
	if d.Findings() != nil || d.RacesOn("buffer") != 0 {
		t.Fatalf("nil detector must report nothing")
	}
}

func TestReplayDeterministic(t *testing.T) {
	recs := []trace.Record{
		acc(1, 1, 0, "buffer", 7, "r"),
		acc(2, 2, 10*sim.Microsecond, "buffer", 7, "w"),
		acc(3, 3, 20*sim.Microsecond, "worker", 1, "wg"),
		acc(4, 1, 21*sim.Microsecond, "worker", 1, "w"),
	}
	first := Replay(recs)
	for i := 0; i < 10; i++ {
		again := Replay(recs)
		if len(again) != len(first) {
			t.Fatalf("replay %d: %d findings vs %d", i, len(again), len(first))
		}
		for j := range first {
			if again[j].key() != first[j].key() || again[j].Second.VC != first[j].Second.VC {
				t.Fatalf("replay %d finding %d drifted: %+v vs %+v", i, j, again[j], first[j])
			}
		}
	}
}
