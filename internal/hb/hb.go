// Package hb performs happens-before analysis over the kernel trace
// stream (internal/trace) and detects data races on shared browser
// targets with a FastTrack-style algorithm.
//
// The analysis consumes the same Record stream every other trace sink
// sees, in Seq order, and maintains:
//
//   - one vector clock per execution context. A context is a simulated
//     thread ("t<id>") or a per-target hazard guardian ("g:<class>:<id>")
//     — a pseudo-context that models the freed/forbidden state a defense
//     must order against. Guardian accesses participate in happens-before
//     only through their own program order, so they race with any plain
//     access unless the defense suppressed the hazard entirely.
//
//   - sanctioned synchronization edges, reconstructed from the stream:
//     kernel event lifecycle (enqueue/confirm release → dispatch acquire,
//     which covers timer arm→fire and kernel-mediated postMessage),
//     explicit kernel sync objects (OpEdge rel/acq: the shared-buffer
//     serialization lock, the §III-E2 kernel-space handshake), native
//     message channels (FIFO send→delivery per worker/frame/self
//     channel), worker spawn (created→ready), and fetch issue→
//     completion/abort.
//
//   - per-target access history in FastTrack form: the last write as an
//     epoch (context@clock), reads as a single epoch while totally
//     ordered, promoted to a full per-context read map only when reads
//     are genuinely concurrent (the "full VC fallback").
//
// Two plain accesses additionally race only when their in-task cursor
// times fall within the same temporal window as the attack models in
// internal/vuln use (raceWindow, 100µs), with the same signed
// convention: happens-before alone cannot distinguish a defense that
// separates accesses in time (Fuzzyfox's coarsened scheduling) from no
// defense at all, because the simulator's native layer carries no lock
// the pacing could be expressed through. Guardian-involving pairs race
// whenever they are unordered — a state hazard does not decay with
// distance.
package hb

import (
	"fmt"
	"sort"
	"strings"

	"jskernel/internal/sim"
	"jskernel/internal/trace"
)

// Window is the temporal-overlap window for plain-plain access pairs,
// mirroring internal/vuln's raceWindow.
const Window = 100 * sim.Microsecond

// VC is a vector clock over the dense per-run context index.
type VC []uint64

// at returns the component for context index i (zero when the vector is
// too short — contexts the holder has never synchronized with).
func (v VC) at(i int) uint64 {
	if i < len(v) {
		return v[i]
	}
	return 0
}

// set grows the vector as needed and sets component i.
func (v *VC) set(i int, val uint64) {
	for len(*v) <= i {
		*v = append(*v, 0)
	}
	(*v)[i] = val
}

// join folds other into v component-wise (max).
func (v *VC) join(other VC) {
	for i, c := range other {
		if c > v.at(i) {
			v.set(i, c)
		}
	}
}

// clone returns an independent copy.
func (v VC) clone() VC {
	out := make(VC, len(v))
	copy(out, v)
	return out
}

// Site describes one access involved in a race.
type Site struct {
	// Context names the accessing execution context: "t<thread>" for a
	// simulated thread, "g:<class>:<id>" for a target's hazard guardian.
	Context string `json:"ctx"`
	// Seq is the trace record sequence number of the access.
	Seq uint64 `json:"seq"`
	// VT is the access's in-task cursor virtual time.
	VT sim.Time `json:"vt"`
	// Action is the access kind: "r", "w", with "g" appended for
	// guardian-attributed accesses.
	Action string `json:"action"`
	// Clock is the accessing context's logical clock at the access (its
	// FastTrack epoch component).
	Clock uint64 `json:"clock"`
	// VC renders the accessing context's full vector clock at the access
	// when the detector still had it (the second access of a pair); the
	// first access is summarized by its epoch alone, which is exactly
	// the state FastTrack retains.
	VC string `json:"vc,omitempty"`
}

// Finding is one detected race: two conflicting accesses to the same
// target with no happens-before path between them.
type Finding struct {
	Run    int    `json:"run"`
	Class  string `json:"class"`  // target class: "worker", "buffer", ...
	Target int64  `json:"target"` // target ID within the class
	First  Site   `json:"first"`
	Second Site   `json:"second"`
	// Guardian marks hazard-witness races: one side is the target's
	// guardian context, so the race encodes a state hazard (use-after-
	// free, use-after-teardown, origin exposure) rather than a timing
	// overlap.
	Guardian bool `json:"guardian"`
	// Evidence lists the trace record Seqs establishing the race: the
	// two access records, in stream order.
	Evidence []uint64 `json:"evidence"`
}

// key orders and dedups findings deterministically.
func (f Finding) key() string {
	return fmt.Sprintf("%d/%s/%d/%s/%s/%s/%s", f.Run, f.Class, f.Target,
		f.First.Context, f.Second.Context, f.First.Action, f.Second.Action)
}

// site is the internal per-access record kept in target state.
type site struct {
	ctx      int
	clock    uint64
	seq      uint64
	vt       sim.Time
	action   string
	guardian bool
}

// targetState is FastTrack per-target state: last write epoch, and reads
// as one epoch until they are observed concurrent, then a per-context
// read map.
type targetState struct {
	write   *site
	read    *site
	readMap map[int]*site
}

// chanMsg is one in-flight FIFO channel message (sender's clock).
type chanMsg struct{ vc VC }

type chanKey struct {
	id   int64  // worker ID, frame ID or thread ID depending on kind
	kind string // "to-worker", "to-parent", "transfer", "self", "to-frame", "from-frame"
}

type syncKey struct {
	api   string
	value int64
}

type evKey struct {
	scope int
	event uint64
}

type targetKey struct {
	class string
	id    int64
}

// runState is all happens-before state for one trace run.
type runState struct {
	ctxIdx  map[string]int
	ctxName []string
	vcs     []VC

	syncs   map[syncKey]VC
	events  map[evKey]VC
	chans   map[chanKey][]chanMsg
	spawns  map[int]VC
	fetches map[int64]VC

	targets map[targetKey]*targetState
}

func newRunState() *runState {
	return &runState{
		ctxIdx:  make(map[string]int),
		syncs:   make(map[syncKey]VC),
		events:  make(map[evKey]VC),
		chans:   make(map[chanKey][]chanMsg),
		spawns:  make(map[int]VC),
		fetches: make(map[int64]VC),
		targets: make(map[targetKey]*targetState),
	}
}

// ctx interns a context name and returns its dense index.
func (rs *runState) ctx(name string) int {
	if i, ok := rs.ctxIdx[name]; ok {
		return i
	}
	i := len(rs.ctxName)
	rs.ctxIdx[name] = i
	rs.ctxName = append(rs.ctxName, name)
	rs.vcs = append(rs.vcs, VC{})
	return i
}

// tick advances context i's own component and returns the new clock.
func (rs *runState) tick(i int) uint64 {
	v := &rs.vcs[i]
	c := v.at(i) + 1
	v.set(i, c)
	return c
}

// threadCtx interns the context for a thread ID.
func (rs *runState) threadCtx(thread int) int {
	return rs.ctx(fmt.Sprintf("t%d", thread))
}

// renderVC formats a vector clock with context names, for findings.
func (rs *runState) renderVC(v VC) string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for i, c := range v {
		if c == 0 {
			continue
		}
		if !first {
			b.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&b, "%s=%d", rs.ctxName[i], c)
	}
	b.WriteByte('}')
	return b.String()
}

// Detector is a streaming race detector over the trace record stream.
// It implements trace.Sink, so it attaches to a live session exactly
// like the obs sinks; a nil *Detector is a valid no-op sink. Records
// must arrive in Seq order per run, which Session guarantees.
type Detector struct {
	runs      map[int]*runState
	window    sim.Duration
	findings  []Finding
	seen      map[string]bool
	onFinding func(Finding)
}

// NewDetector returns a streaming detector with the standard temporal
// window.
func NewDetector() *Detector {
	return &Detector{runs: make(map[int]*runState), window: Window, seen: make(map[string]bool)}
}

// SetWindow overrides the plain-plain temporal-overlap window. Schedule
// exploration widens it to catalogue *every* unordered conflicting pair
// (DPOR's racing-transition candidates), while a second detector keeps
// the standard window for exploitability verdicts.
func (d *Detector) SetWindow(w sim.Duration) {
	if d == nil {
		return
	}
	d.window = w
}

// SetOnFinding installs a callback invoked synchronously as each new
// (deduplicated) finding is recorded, before Observe returns. Explore
// uses it to stop a run at first detection so the recorded choice
// vector is a minimal replay token. Nil removes the callback.
func (d *Detector) SetOnFinding(fn func(Finding)) {
	if d == nil {
		return
	}
	d.onFinding = fn
}

var _ trace.Sink = (*Detector)(nil)

// Findings returns the detected races sorted by (run, class, target,
// second-access seq) — a deterministic order independent of map
// iteration.
func (d *Detector) Findings() []Finding {
	if d == nil {
		return nil
	}
	out := make([]Finding, len(d.findings))
	copy(out, d.findings)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Run != b.Run {
			return a.Run < b.Run
		}
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		if a.Target != b.Target {
			return a.Target < b.Target
		}
		return a.Second.Seq < b.Second.Seq
	})
	return out
}

// RacesOn counts findings on one target class.
func (d *Detector) RacesOn(class string) int {
	if d == nil {
		return 0
	}
	n := 0
	for _, f := range d.findings {
		if f.Class == class {
			n++
		}
	}
	return n
}

// Replay runs the detector over a recorded trace (e.g. one re-imported
// through trace.ReadRecords) and returns the findings.
func Replay(recs []trace.Record) []Finding {
	d := NewDetector()
	for _, r := range recs {
		d.Observe(r)
	}
	return d.Findings()
}

// Observe consumes one trace record (trace.Sink).
func (d *Detector) Observe(r trace.Record) {
	if d == nil {
		return
	}
	rs := d.runs[r.Run]
	if rs == nil {
		rs = newRunState()
		d.runs[r.Run] = rs
	}
	switch r.Op {
	case trace.OpAccess:
		d.access(rs, r)
	case trace.OpEdge:
		rs.edge(r)
	case trace.OpEnqueue, trace.OpConfirm:
		rs.release(r)
	case trace.OpDispatch:
		rs.acquire(r)
	case trace.OpCancel, trace.OpExpire:
		rs.retire(r)
	case trace.OpNative:
		rs.native(r)
	default:
		if r.Thread != 0 {
			rs.tick(rs.threadCtx(r.Thread))
		}
	}
}

// release publishes the enqueuing/confirming thread's clock into the
// kernel event's sync state (OpEnqueue, OpConfirm).
func (rs *runState) release(r trace.Record) {
	ci := rs.threadCtx(r.Thread)
	rs.tick(ci)
	k := evKey{scope: r.Scope, event: r.Event}
	v := rs.events[k]
	v.join(rs.vcs[ci])
	rs.events[k] = v
}

// acquire joins the kernel event's accumulated sync state into the
// dispatching thread (OpDispatch) and retires the event.
func (rs *runState) acquire(r trace.Record) {
	ci := rs.threadCtx(r.Thread)
	rs.tick(ci)
	k := evKey{scope: r.Scope, event: r.Event}
	if v, ok := rs.events[k]; ok {
		rs.vcs[ci].join(v)
		delete(rs.events, k)
	}
}

// retire drops sync state for a cancelled/expired kernel event.
func (rs *runState) retire(r trace.Record) {
	if r.Thread != 0 {
		rs.tick(rs.threadCtx(r.Thread))
	}
	delete(rs.events, evKey{scope: r.Scope, event: r.Event})
}

// edge handles explicit kernel sync objects (OpEdge): "rel" publishes
// the thread's clock into the object, "acq" joins the object into the
// thread.
func (rs *runState) edge(r trace.Record) {
	ci := rs.threadCtx(r.Thread)
	rs.tick(ci)
	k := syncKey{api: r.API, value: r.Value}
	switch r.Action {
	case "rel":
		v := rs.syncs[k]
		v.join(rs.vcs[ci])
		rs.syncs[k] = v
	case "acq":
		if v, ok := rs.syncs[k]; ok {
			rs.vcs[ci].join(v)
		}
	}
}

// native reconstructs happens-before edges from bridged native-layer
// events: message-channel FIFOs, worker spawn, and fetch lifecycle.
func (rs *runState) native(r trace.Record) {
	ci := rs.threadCtx(r.Thread)
	rs.tick(ci)
	switch r.API {
	case "post-message":
		switch r.Reason {
		case "to-worker":
			rs.send(chanKey{int64(r.WorkerID), "to-worker"}, ci)
		case "to-parent":
			rs.send(chanKey{int64(r.WorkerID), "to-parent"}, ci)
		case "self":
			rs.send(chanKey{int64(r.Thread), "self"}, ci)
		case "to-frame":
			rs.send(chanKey{r.Value, "to-frame"}, ci)
		case "to-parent-window":
			rs.send(chanKey{r.Value, "from-frame"}, ci)
		}
	case "transferable":
		if r.Reason == "to-parent" {
			rs.send(chanKey{int64(r.WorkerID), "transfer"}, ci)
		}
	case "message-delivered":
		switch r.Reason {
		case "to-worker":
			rs.recv(chanKey{int64(r.WorkerID), "to-worker"}, ci)
		case "to-parent", "after-teardown":
			// An after-teardown delivery still popped the same channel a
			// live document would have; the hazard itself is witnessed by
			// the "doc" guardian access, not by a missing edge.
			rs.recv(chanKey{int64(r.WorkerID), "to-parent"}, ci)
		case "transfer":
			rs.recv(chanKey{int64(r.WorkerID), "transfer"}, ci)
		case "self":
			rs.recv(chanKey{int64(r.Thread), "self"}, ci)
		case "to-frame":
			rs.recv(chanKey{r.Value, "to-frame"}, ci)
		case "from-frame":
			rs.recv(chanKey{r.Value, "from-frame"}, ci)
		case "released-use":
			// Delivery into a released worker slot is not a sanctioned
			// receive: the "worker" guardian access witnesses it instead.
		}
	case "worker-created":
		rs.spawns[r.WorkerID] = rs.vcs[ci].clone()
	case "worker-ready":
		if v, ok := rs.spawns[r.WorkerID]; ok {
			rs.vcs[ci].join(v)
			delete(rs.spawns, r.WorkerID)
		}
	case "fetch-start":
		rs.fetches[r.Value] = rs.vcs[ci].clone()
	case "fetch-done", "fetch-abort":
		if v, ok := rs.fetches[r.Value]; ok {
			rs.vcs[ci].join(v)
			delete(rs.fetches, r.Value)
		}
	}
}

// send pushes the sender's clock onto a FIFO channel.
func (rs *runState) send(k chanKey, ci int) {
	rs.chans[k] = append(rs.chans[k], chanMsg{vc: rs.vcs[ci].clone()})
}

// recv pops the channel head and joins it into the receiver. An empty
// channel (a delivery whose send the kernel rewrote) contributes no
// edge, which can only make the analysis report more races, never
// fewer.
func (rs *runState) recv(k chanKey, ci int) {
	q := rs.chans[k]
	if len(q) == 0 {
		return
	}
	rs.vcs[ci].join(q[0].vc)
	rs.chans[k] = q[1:]
}

// access processes one shared-target access record: FastTrack race
// checks against the target's history, then history update.
func (d *Detector) access(rs *runState, r trace.Record) {
	guardian := strings.Contains(r.Action, "g")
	write := strings.Contains(r.Action, "w")
	var ci int
	if guardian {
		ci = rs.ctx(fmt.Sprintf("g:%s:%d", r.API, r.Value))
	} else {
		ci = rs.threadCtx(r.Thread)
	}
	clock := rs.tick(ci)
	cur := &site{ctx: ci, clock: clock, seq: r.Seq, vt: r.VT, action: r.Action, guardian: guardian}
	tk := targetKey{class: r.API, id: r.Value}
	ts := rs.targets[tk]
	if ts == nil {
		ts = &targetState{}
		rs.targets[tk] = ts
	}
	vc := rs.vcs[ci]

	// Race checks: current access vs the target's history. Reads are
	// only checked against the last write; writes against the write and
	// every retained read.
	if ts.write != nil {
		d.check(rs, r, tk, ts.write, cur, vc)
	}
	if write {
		if ts.read != nil {
			d.check(rs, r, tk, ts.read, cur, vc)
		}
		for _, rd := range sortedReads(ts.readMap) {
			d.check(rs, r, tk, rd, cur, vc)
		}
	}

	// History update (FastTrack): a write supersedes the whole history;
	// a read stays a single epoch while reads remain ordered and is
	// promoted to the per-context map only on concurrent readers.
	if write {
		ts.write = cur
		ts.read = nil
		ts.readMap = nil
		return
	}
	if ts.readMap != nil {
		ts.readMap[ci] = cur
		return
	}
	if ts.read == nil || ts.read.ctx == ci || ts.read.clock <= vc.at(ts.read.ctx) {
		// Fast path: same reader, or the previous read epoch is ordered
		// before us — one epoch still summarizes the read history.
		ts.read = cur
		return
	}
	// Concurrent readers: fall back to the full per-context read map.
	ts.readMap = map[int]*site{ts.read.ctx: ts.read, ci: cur}
	ts.read = nil
}

// check tests one (previous, current) access pair and records a finding
// when they conflict, are unordered, and pass the temporal-window rule.
func (d *Detector) check(rs *runState, r trace.Record, tk targetKey, prev, cur *site, vc VC) {
	if prev.ctx == cur.ctx {
		return // program order
	}
	if !strings.Contains(prev.action, "w") && !strings.Contains(cur.action, "w") {
		return // read-read pairs never conflict
	}
	if prev.clock <= vc.at(prev.ctx) {
		return // ordered: prev happens-before cur
	}
	guardian := prev.guardian || cur.guardian
	if !guardian && cur.vt-prev.vt > d.window {
		// Unordered but temporally separated: outside the attack window
		// the interleaving is not exploitable (this is how coarsened-
		// scheduling defenses actually defend). The check is signed, as
		// in internal/vuln: records arrive in task-commit order, so a
		// later record with an *earlier* cursor time means the two tasks'
		// execution intervals genuinely overlapped — always racy.
		return
	}
	f := Finding{
		Run:    r.Run,
		Class:  tk.class,
		Target: tk.id,
		First: Site{
			Context: rs.ctxName[prev.ctx], Seq: prev.seq, VT: prev.vt,
			Action: prev.action, Clock: prev.clock,
		},
		Second: Site{
			Context: rs.ctxName[cur.ctx], Seq: cur.seq, VT: cur.vt,
			Action: cur.action, Clock: cur.clock, VC: rs.renderVC(vc),
		},
		Guardian: guardian,
		Evidence: []uint64{prev.seq, cur.seq},
	}
	k := f.key()
	if d.seen[k] {
		return
	}
	d.seen[k] = true
	d.findings = append(d.findings, f)
	if d.onFinding != nil {
		d.onFinding(f)
	}
}

// sortedReads returns the read map's entries in deterministic context
// order.
func sortedReads(m map[int]*site) []*site {
	if len(m) == 0 {
		return nil
	}
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]*site, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	return out
}
