package hb

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"jskernel/internal/sim"
	"jskernel/internal/trace"
)

// Schedule-order invariance: the record stream the detector sees is one
// linearization of a partial order (program order per context, plus
// sync edges). Any HB-respecting linearization must yield the same
// per-target race verdicts — the property DPOR's schedule mining relies
// on. The invariant is per-target *raciness*, not the exact finding
// multiset: FastTrack's write-supersede history means which pair
// witnesses a racy target legitimately depends on arrival order, but
// whether a target is racy at all must not.
//
// Two fixture caveats keep the property honest:
//   - every unordered conflicting pair sits within hb.Window in BOTH
//     directions (|Δvt| ≤ window), because the plain-plain window check
//     is signed and an order swap of a temporally distant pair would
//     change its verdict by design;
//   - ordered pairs are ordered by sync edges (rel before acq in every
//     valid linearization), not by stream adjacency, so no valid
//     permutation can break their ordering.

// fixtureThreads returns the per-thread program-order record lists.
// Racy targets: buffer/1 (t3 unordered with both t1 and t2),
// worker/2 (t1's post-rel write vs t2's write). Never racy: idb/3
// (t1 writes before rel, t2 after acq — always edge-ordered).
func fixtureThreads() [][]trace.Record {
	w := func(thread int, vt sim.Time, class string, id int64) trace.Record {
		return trace.Record{Run: 1, VT: vt, Thread: thread,
			Op: trace.OpAccess, API: class, Value: id, Action: "w"}
	}
	syncEdge := func(thread int, action string) trace.Record {
		return trace.Record{Run: 1, Thread: thread,
			Op: trace.OpEdge, API: "chan", Value: 5, Action: action}
	}
	return [][]trace.Record{
		{
			w(1, 5*sim.Microsecond, "idb", 3),
			w(1, 10*sim.Microsecond, "buffer", 1),
			syncEdge(1, "rel"),
			w(1, 40*sim.Microsecond, "worker", 2),
		},
		{
			syncEdge(2, "acq"),
			w(2, 55*sim.Microsecond, "idb", 3),
			w(2, 60*sim.Microsecond, "buffer", 1),
			w(2, 80*sim.Microsecond, "worker", 2),
		},
		{
			w(3, 50*sim.Microsecond, "buffer", 1),
		},
	}
}

// linearize draws one HB-respecting linearization of the fixture: a
// randomized topological sort over program order plus the rel→acq
// constraint, re-stamping Seq in stream order.
func linearize(rng *rand.Rand, threads [][]trace.Record) []trace.Record {
	heads := make([]int, len(threads))
	relSeen := false
	var out []trace.Record
	total := 0
	for _, th := range threads {
		total += len(th)
	}
	for len(out) < total {
		var ready []int
		for t, th := range threads {
			if heads[t] >= len(th) {
				continue
			}
			r := th[heads[t]]
			if r.Op == trace.OpEdge && r.Action == "acq" && !relSeen {
				continue // causally after the rel: not yet schedulable
			}
			ready = append(ready, t)
		}
		t := ready[rng.Intn(len(ready))]
		r := threads[t][heads[t]]
		heads[t]++
		if r.Op == trace.OpEdge && r.Action == "rel" {
			relSeen = true
		}
		r.Seq = uint64(len(out) + 1)
		out = append(out, r)
	}
	return out
}

// racyTargets normalizes findings to the sorted set of racy targets.
func racyTargets(findings []Finding) string {
	set := map[string]bool{}
	for _, f := range findings {
		set[fmt.Sprintf("%s/%d", f.Class, f.Target)] = true
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return fmt.Sprint(keys)
}

// TestFindingsInvariantUnderHBPermutations runs the detector over many
// random valid linearizations of the fixture and asserts every one
// yields the same racy-target set — including the known-ordered target
// never appearing.
func TestFindingsInvariantUnderHBPermutations(t *testing.T) {
	threads := fixtureThreads()
	rng := rand.New(rand.NewSource(7))
	want := "[buffer/1 worker/2]"
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		recs := linearize(rng, threads)
		got := racyTargets(Replay(recs))
		if got != want {
			var order []string
			for _, r := range recs {
				order = append(order, fmt.Sprintf("t%d:%s:%s/%d", r.Thread, r.Action, r.API, r.Value))
			}
			t.Fatalf("linearization %d: racy targets %s, want %s\nschedule: %v", i, got, want, order)
		}
		seen[fmt.Sprint(scheduleKey(recs))] = true
	}
	// The generator must actually explore the space, or the test is
	// vacuous: 100 draws over this fixture's many linearizations should
	// produce a healthy variety of distinct schedules.
	if len(seen) < 10 {
		t.Fatalf("only %d distinct linearizations in 100 draws — generator too weak", len(seen))
	}
}

// scheduleKey fingerprints a linearization by its thread sequence.
func scheduleKey(recs []trace.Record) []int {
	out := make([]int, len(recs))
	for i, r := range recs {
		out[i] = r.Thread
	}
	return out
}
