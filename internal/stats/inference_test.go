package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWelchTSeparatedSamples(t *testing.T) {
	a := []float64{10, 10.2, 9.8, 10.1, 9.9}
	b := []float64{20, 20.2, 19.8, 20.1, 19.9}
	tt, df := WelchT(a, b)
	if math.Abs(tt) < 50 {
		t.Fatalf("t = %v, want large for separated samples", tt)
	}
	if df <= 0 || df > 8 {
		t.Fatalf("df = %v, want in (0, 8]", df)
	}
	if !WelchDistinguishable(a, b) {
		t.Fatal("separated samples not distinguishable")
	}
}

func TestWelchTIdenticalSamples(t *testing.T) {
	a := []float64{5, 5.1, 4.9, 5.05, 4.95}
	if WelchDistinguishable(a, a) {
		t.Fatal("identical samples distinguishable")
	}
	tt, _ := WelchT(a, a)
	if tt != 0 {
		t.Fatalf("t = %v for identical samples", tt)
	}
}

func TestWelchConstantSamples(t *testing.T) {
	same := []float64{3, 3, 3}
	if WelchDistinguishable(same, []float64{3, 3, 3}) {
		t.Fatal("equal constants distinguishable")
	}
	if !WelchDistinguishable(same, []float64{4, 4, 4}) {
		t.Fatal("different constants should be trivially distinguishable")
	}
}

func TestWelchSmallSamples(t *testing.T) {
	if WelchDistinguishable([]float64{1}, []float64{100, 101}) {
		t.Fatal("single-point sample should not be distinguishable (no variance estimate)")
	}
	if WelchDistinguishable(nil, []float64{1, 2}) {
		t.Fatal("empty sample distinguishable")
	}
}

func TestWelchAgreesWithCohenOnTableIShapes(t *testing.T) {
	// The two criteria must agree on the canonical shapes: a big leak and
	// a deterministic defense.
	leakA := []float64{100, 102, 98, 101, 99}
	leakB := []float64{500, 505, 495, 502, 498}
	if Distinguishable(leakA, leakB) != WelchDistinguishable(leakA, leakB) {
		t.Fatal("criteria disagree on a clear leak")
	}
	detA := []float64{10, 10, 10, 10, 10}
	detB := []float64{10, 10, 10, 10, 10}
	if Distinguishable(detA, detB) != WelchDistinguishable(detA, detB) {
		t.Fatal("criteria disagree on a deterministic defense")
	}
}

func TestWelchCriticalTMonotone(t *testing.T) {
	last := math.Inf(1)
	for _, df := range []float64{1, 2, 3, 5, 10, 20, 50, 100, 1000} {
		c := welchCriticalT(df)
		if c > last {
			t.Fatalf("critical value not decreasing at df=%v: %v > %v", df, c, last)
		}
		last = c
	}
	if c := welchCriticalT(1e12); c != 2.58 {
		t.Fatalf("asymptotic critical value = %v", c)
	}
}

func TestBootstrapCI(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 50 + rng.NormFloat64()*5
	}
	lo, hi, err := 0.0, 0.0, error(nil)
	_ = err
	lo, hi = BootstrapCI(xs, 0.95, 2000, rand.New(rand.NewSource(2)))
	m := Mean(xs)
	if lo > m || hi < m {
		t.Fatalf("CI [%v, %v] does not cover the sample mean %v", lo, hi, m)
	}
	if hi-lo <= 0 || hi-lo > 5 {
		t.Fatalf("CI width %v implausible for n=100, sd=5", hi-lo)
	}
}

func TestBootstrapCIDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if lo, hi := BootstrapCI(nil, 0.95, 100, rng); lo != 0 || hi != 0 {
		t.Fatal("empty sample CI should be zero")
	}
	if lo, hi := BootstrapCI([]float64{7}, 0.95, 100, rng); lo != 7 || hi != 7 {
		t.Fatal("single sample CI should collapse")
	}
	// Bad parameters fall back to defaults.
	lo, hi := BootstrapCI([]float64{1, 2, 3}, -1, -1, rng)
	if lo > hi {
		t.Fatal("default-parameter CI inverted")
	}
}

func TestPropertyBootstrapCIWithinRange(t *testing.T) {
	f := func(raw []float64, seed int64) bool {
		if len(raw) == 0 {
			return true
		}
		for i, v := range raw {
			// Clamp to a range where bootstrap sums cannot overflow.
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				raw[i] = 0
			}
		}
		rng := rand.New(rand.NewSource(seed))
		lo, hi := BootstrapCI(raw, 0.9, 200, rng)
		mn, mx, err := MinMax(raw)
		if err != nil {
			return false
		}
		return lo >= mn-1e-9 && hi <= mx+1e-9 && lo <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
