package stats

import (
	"math"
	"math/rand"
)

// This file adds the inferential statistics used for sensitivity analysis
// of the distinguishability criterion: Welch's t-test (an alternative to
// the Cohen's d threshold) and bootstrap confidence intervals for the
// mean values reported in Tables II and III.

// WelchT returns Welch's t statistic and the Welch–Satterthwaite degrees
// of freedom for two samples. It returns (0, 0) when either sample has
// fewer than two points or both variances are zero.
func WelchT(a, b []float64) (t, df float64) {
	na, nb := float64(len(a)), float64(len(b))
	if na < 2 || nb < 2 {
		return 0, 0
	}
	va, vb := Variance(a), Variance(b)
	sa, sb := va/na, vb/nb
	se := sa + sb
	if se == 0 {
		return 0, 0
	}
	t = (Mean(a) - Mean(b)) / math.Sqrt(se)
	den := sa*sa/(na-1) + sb*sb/(nb-1)
	if den == 0 {
		return t, 0
	}
	df = se * se / den
	return t, df
}

// welchCriticalT approximates the two-sided 1% critical value of the t
// distribution for the given degrees of freedom (a conservative table
// lookup with linear interpolation; adequate for a pass/fail criterion).
func welchCriticalT(df float64) float64 {
	table := []struct {
		df   float64
		crit float64
	}{
		{1, 63.66}, {2, 9.92}, {3, 5.84}, {4, 4.60}, {5, 4.03},
		{6, 3.71}, {8, 3.36}, {10, 3.17}, {15, 2.95}, {20, 2.85},
		{30, 2.75}, {60, 2.66}, {120, 2.62}, {1e9, 2.58},
	}
	if df <= table[0].df {
		return table[0].crit
	}
	for i := 1; i < len(table); i++ {
		if df <= table[i].df {
			lo, hi := table[i-1], table[i]
			frac := (df - lo.df) / (hi.df - lo.df)
			return lo.crit + frac*(hi.crit-lo.crit)
		}
	}
	return 2.58
}

// WelchDistinguishable reports whether two samples differ at the 1% level
// under Welch's t-test — an alternative to the Cohen's d criterion, used
// to check that Table I's verdicts are not an artifact of the threshold
// choice. Identical constant samples are indistinguishable; constant
// samples with different values are trivially distinguishable.
func WelchDistinguishable(a, b []float64) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	if Variance(a) == 0 && Variance(b) == 0 {
		return Mean(a) != Mean(b)
	}
	t, df := WelchT(a, b)
	if df <= 0 {
		return false
	}
	return math.Abs(t) > welchCriticalT(df)
}

// BootstrapCI returns a percentile bootstrap confidence interval for the
// mean of xs at the given confidence level (e.g. 0.95), using resamples
// drawn from rng for reproducibility.
func BootstrapCI(xs []float64, level float64, resamples int, rng *rand.Rand) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	if len(xs) == 1 {
		return xs[0], xs[0]
	}
	if resamples <= 0 {
		resamples = 1000
	}
	if level <= 0 || level >= 1 {
		level = 0.95
	}
	means := make([]float64, resamples)
	for r := 0; r < resamples; r++ {
		sum := 0.0
		for i := 0; i < len(xs); i++ {
			sum += xs[rng.Intn(len(xs))]
		}
		means[r] = sum / float64(len(xs))
	}
	alpha := (1 - level) / 2 * 100
	return Percentile(means, alpha), Percentile(means, 100-alpha)
}
