package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 5},
		{"several", []float64{1, 2, 3, 4}, 2.5},
		{"negative", []float64{-2, 2}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Mean(tc.in); !almost(got, tc.want) {
				t.Fatalf("Mean(%v) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almost(got, 32.0/7.0) {
		t.Fatalf("Variance = %v, want %v", got, 32.0/7.0)
	}
	if got := StdDev(xs); !almost(got, math.Sqrt(32.0/7.0)) {
		t.Fatalf("StdDev = %v", got)
	}
	if Variance([]float64{3}) != 0 {
		t.Fatal("variance of single sample should be 0")
	}
}

func TestMedianAndPercentile(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); !almost(got, 2) {
		t.Fatalf("Median odd = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); !almost(got, 2.5) {
		t.Fatalf("Median even = %v", got)
	}
	xs := []float64{10, 20, 30, 40, 50}
	if got := Percentile(xs, 0); !almost(got, 10) {
		t.Fatalf("P0 = %v", got)
	}
	if got := Percentile(xs, 100); !almost(got, 50) {
		t.Fatalf("P100 = %v", got)
	}
	if got := Percentile(xs, 25); !almost(got, 20) {
		t.Fatalf("P25 = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("P50 of empty = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi, err := MinMax([]float64{3, -1, 7, 2})
	if err != nil {
		t.Fatal(err)
	}
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %v, %v", lo, hi)
	}
	if _, _, err := MinMax(nil); err == nil {
		t.Fatal("MinMax(nil) should error")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || !almost(s.Mean, 2) || !almost(s.Median, 2) || s.Min != 1 || s.Max != 3 {
		t.Fatalf("Summary = %+v", s)
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 2})
	if len(pts) != 3 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[0].Value != 1 || !almost(pts[0].Fraction, 1.0/3) {
		t.Fatalf("first point = %+v", pts[0])
	}
	if pts[2].Value != 3 || !almost(pts[2].Fraction, 1) {
		t.Fatalf("last point = %+v", pts[2])
	}
	if CDF(nil) != nil {
		t.Fatal("CDF(nil) should be nil")
	}
}

func TestCohensD(t *testing.T) {
	a := []float64{10, 10.1, 9.9, 10, 10.05}
	b := []float64{20, 20.1, 19.9, 20, 20.05}
	if d := CohensD(a, b); d < 50 {
		t.Fatalf("well-separated samples d = %v, want large", d)
	}
	if d := CohensD(a, a); d != 0 {
		t.Fatalf("identical samples d = %v, want 0", d)
	}
	// Deterministic defense: zero variance, equal means.
	c1 := []float64{5, 5, 5}
	c2 := []float64{5, 5, 5}
	if d := CohensD(c1, c2); d != 0 {
		t.Fatalf("constant equal samples d = %v", d)
	}
	// Zero variance but different means: infinitely distinguishable.
	c3 := []float64{6, 6, 6}
	if d := CohensD(c1, c3); !math.IsInf(d, 1) {
		t.Fatalf("constant unequal samples d = %v, want +Inf", d)
	}
}

func TestDistinguishable(t *testing.T) {
	a := []float64{1, 1.01, 0.99}
	b := []float64{5, 5.01, 4.99}
	if !Distinguishable(a, b) {
		t.Fatal("clearly separated samples not distinguishable")
	}
	if Distinguishable(a, a) {
		t.Fatal("identical samples distinguishable")
	}
}

func TestCosineSimilarity(t *testing.T) {
	a := map[string]float64{"div": 2, "span": 1}
	if got := CosineSimilarity(a, a); !almost(got, 1) {
		t.Fatalf("self similarity = %v", got)
	}
	b := map[string]float64{"img": 3}
	if got := CosineSimilarity(a, b); !almost(got, 0) {
		t.Fatalf("orthogonal similarity = %v", got)
	}
	if got := CosineSimilarity(nil, nil); !almost(got, 1) {
		t.Fatalf("empty-empty similarity = %v", got)
	}
	if got := CosineSimilarity(a, nil); !almost(got, 0) {
		t.Fatalf("nonempty-empty similarity = %v", got)
	}
}

func TestRelativeOverhead(t *testing.T) {
	if got := RelativeOverhead(100, 102); !almost(got, 0.02) {
		t.Fatalf("overhead = %v", got)
	}
	if got := RelativeOverhead(100, 95); !almost(got, -0.05) {
		t.Fatalf("speedup = %v", got)
	}
	if got := RelativeOverhead(0, 5); got != 0 {
		t.Fatalf("zero base = %v", got)
	}
}

func TestLinearSlope(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // slope 2
	if got := LinearSlope(xs, ys); !almost(got, 2) {
		t.Fatalf("slope = %v", got)
	}
	flat := []float64{4, 4, 4, 4}
	if got := LinearSlope(xs, flat); !almost(got, 0) {
		t.Fatalf("flat slope = %v", got)
	}
	if got := LinearSlope(flat, ys); got != 0 {
		t.Fatalf("degenerate x slope = %v", got)
	}
}

func TestPearsonR(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if got := PearsonR(xs, ys); !almost(got, 1) {
		t.Fatalf("r = %v", got)
	}
	neg := []float64{8, 6, 4, 2}
	if got := PearsonR(xs, neg); !almost(got, -1) {
		t.Fatalf("r = %v", got)
	}
	if got := PearsonR(xs, []float64{5, 5, 5, 5}); got != 0 {
		t.Fatalf("constant r = %v", got)
	}
}

func TestPropertyPercentileWithinRange(t *testing.T) {
	f := func(raw []float64, p float64) bool {
		if len(raw) == 0 {
			return true
		}
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				raw[i] = 0
			}
		}
		pp := math.Mod(math.Abs(p), 100)
		got := Percentile(raw, pp)
		lo, hi, err := MinMax(raw)
		if err != nil {
			return false
		}
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCosineBounds(t *testing.T) {
	f := func(ka, kb []uint8) bool {
		a := make(map[string]float64)
		b := make(map[string]float64)
		for _, k := range ka {
			a[string(rune('a'+k%26))]++
		}
		for _, k := range kb {
			b[string(rune('a'+k%26))]++
		}
		got := CosineSimilarity(a, b)
		return got >= -1e-9 && got <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCDFMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		for i, v := range raw {
			if math.IsNaN(v) {
				raw[i] = 0
			}
		}
		pts := CDF(raw)
		for i := 1; i < len(pts); i++ {
			if pts[i].Value < pts[i-1].Value || pts[i].Fraction < pts[i-1].Fraction {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
