// Package stats provides the small statistical toolkit used by every
// experiment in this reproduction: summary statistics, CDFs, percentiles,
// cosine similarity (the paper's DOM-compatibility metric), and an
// effect-size based distinguishability test (the success criterion for
// timing side channels).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// sortedKeys returns m's keys in sorted order, the deterministic way to
// iterate a map whose visit order reaches any output.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 for n < 2).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median of xs, or 0 for an empty slice.
func Median(xs []float64) float64 {
	return Percentile(xs, 50)
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MinMax returns the smallest and largest values in xs.
func MinMax(xs []float64) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi, nil
}

// Summary bundles the descriptive statistics reported in the paper's tables.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	s := Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Median: Median(xs),
		StdDev: StdDev(xs),
	}
	if lo, hi, err := MinMax(xs); err == nil {
		s.Min, s.Max = lo, hi
	}
	return s
}

// CDFPoint is one step of an empirical cumulative distribution function.
type CDFPoint struct {
	Value    float64
	Fraction float64 // fraction of samples <= Value, in (0, 1]
}

// CDF returns the empirical CDF of xs as a step function, one point per
// sample, sorted by value. This is the form Figure 3 of the paper plots.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	points := make([]CDFPoint, len(sorted))
	for i, v := range sorted {
		points[i] = CDFPoint{Value: v, Fraction: float64(i+1) / float64(len(sorted))}
	}
	return points
}

// CohensD returns the absolute standardized difference between two samples
// (Cohen's d with pooled standard deviation). A deterministic defense makes
// both samples identical, giving d == 0; a leaky channel gives large d.
func CohensD(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	va, vb := Variance(a), Variance(b)
	na, nb := float64(len(a)), float64(len(b))
	var pooled float64
	if na+nb > 2 {
		pooled = math.Sqrt(((na-1)*va + (nb-1)*vb) / (na + nb - 2))
	}
	diff := math.Abs(Mean(a) - Mean(b))
	if pooled == 0 {
		if diff == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return diff / pooled
}

// DistinguishableThreshold is the Cohen's d above which two secret-dependent
// measurement distributions count as distinguishable: the attack succeeded.
// 2.0 corresponds to almost non-overlapping distributions; every "vulnerable"
// cell in Table I clears it by an order of magnitude, and every "defended"
// cell sits at exactly 0.
const DistinguishableThreshold = 2.0

// Distinguishable reports whether measurements of two different secrets can
// be told apart, i.e. whether the side channel leaks.
func Distinguishable(a, b []float64) bool {
	return CohensD(a, b) >= DistinguishableThreshold
}

// CosineSimilarity returns the cosine of the angle between two term
// frequency vectors, the metric the paper uses to compare DOM renders with
// and without JSKernel. Keys missing from one map count as zero. Two empty
// maps are identical (similarity 1).
func CosineSimilarity(a, b map[string]float64) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	// Float accumulation is not associative, so iterate in sorted key
	// order: byte-identical results across runs matter more here than
	// the cost of two sorts (term vectors are small).
	var dot, na, nb float64
	for _, k := range sortedKeys(a) {
		va := a[k]
		dot += va * b[k]
		na += va * va
	}
	for _, k := range sortedKeys(b) {
		vb := b[k]
		nb += vb * vb
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// RelativeOverhead returns (with-base)/base as a fraction, e.g. 0.02 for a
// 2% slowdown. A negative result means "with" was faster.
func RelativeOverhead(base, with float64) float64 {
	if base == 0 {
		return 0
	}
	return (with - base) / base
}

// LinearSlope fits y = a + b*x by least squares and returns b. The script
// parsing experiment (Figure 2) uses it to quantify how strongly reported
// time grows with file size under each defense.
func LinearSlope(xs, ys []float64) float64 {
	n := len(xs)
	if n == 0 || n != len(ys) {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var num, den float64
	for i := 0; i < n; i++ {
		num += (xs[i] - mx) * (ys[i] - my)
		den += (xs[i] - mx) * (xs[i] - mx)
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// PearsonR returns the Pearson correlation coefficient between xs and ys,
// or 0 when it is undefined (constant input or mismatched lengths).
func PearsonR(xs, ys []float64) float64 {
	n := len(xs)
	if n == 0 || n != len(ys) {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var num, dx, dy float64
	for i := 0; i < n; i++ {
		num += (xs[i] - mx) * (ys[i] - my)
		dx += (xs[i] - mx) * (xs[i] - mx)
		dy += (ys[i] - my) * (ys[i] - my)
	}
	if dx == 0 || dy == 0 {
		return 0
	}
	return num / math.Sqrt(dx*dy)
}
