package vuln

import (
	"testing"

	"jskernel/internal/browser"
	"jskernel/internal/sim"
)

func TestAllListsTwelveStableOrder(t *testing.T) {
	a, b := All(), All()
	if len(a) != 12 {
		t.Fatalf("len(All()) = %d, want 12", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("All() order not stable")
		}
	}
}

func TestDescriptionsExist(t *testing.T) {
	for _, c := range All() {
		if Description(c) == "unknown vulnerability" {
			t.Errorf("no description for %s", c)
		}
	}
	if Description(CVE("CVE-0000-0000")) != "unknown vulnerability" {
		t.Error("unknown CVE should say so")
	}
}

func TestCVE20185092OrphanedAbort(t *testing.T) {
	r := NewRegistry()
	r.Trace(browser.TraceEvent{Kind: browser.TraceWorkerTerminated, WorkerID: 1, Detail: "pending-fetch"})
	if r.Exploited(CVE20185092) {
		t.Fatal("termination alone should not trigger")
	}
	r.Trace(browser.TraceEvent{Kind: browser.TraceFetchAbort, Detail: "orphaned"})
	if !r.Exploited(CVE20185092) {
		t.Fatal("orphaned abort should trigger CVE-2018-5092")
	}
}

func TestCVE20185092CleanAbortDoesNotTrigger(t *testing.T) {
	r := NewRegistry()
	r.Trace(browser.TraceEvent{Kind: browser.TraceFetchAbort, Detail: ""})
	r.Trace(browser.TraceEvent{Kind: browser.TraceFetchAbort, Detail: "late"})
	if r.Exploited(CVE20185092) {
		t.Fatal("clean abort should not trigger")
	}
}

func TestCVE20177843PrivateModePut(t *testing.T) {
	r := NewRegistry()
	r.Trace(browser.TraceEvent{Kind: browser.TraceIndexedDBPut, Detail: ""})
	if r.Exploited(CVE20177843) {
		t.Fatal("normal-mode put should not trigger")
	}
	r.Trace(browser.TraceEvent{Kind: browser.TraceIndexedDBPut, Detail: "private-mode"})
	if !r.Exploited(CVE20177843) {
		t.Fatal("private-mode put should trigger")
	}
}

func TestLeakCVEs(t *testing.T) {
	r := NewRegistry()
	r.Trace(browser.TraceEvent{Kind: browser.TraceNavigationError, Detail: "leaky-error"})
	r.Trace(browser.TraceEvent{Kind: browser.TraceNavigationError, Detail: "location-leak"})
	r.Trace(browser.TraceEvent{Kind: browser.TraceWorkerError, Detail: "cross-origin-create"})
	r.Trace(browser.TraceEvent{Kind: browser.TraceXHR, Detail: "cross-origin-worker"})
	for _, c := range []CVE{CVE20157215, CVE20111190, CVE20141487, CVE20131714} {
		if !r.Exploited(c) {
			t.Errorf("%s not detected", c)
		}
	}
}

func TestWorkerLifecycleCVEs(t *testing.T) {
	r := NewRegistry()
	r.Trace(browser.TraceEvent{Kind: browser.TraceWorkerTerminated, Detail: "pending-messages"})
	r.Trace(browser.TraceEvent{Kind: browser.TraceOnMessageSet, Detail: "null-deref"})
	r.Trace(browser.TraceEvent{Kind: browser.TraceMessageDelivered, Detail: "after-teardown"})
	r.Trace(browser.TraceEvent{Kind: browser.TraceMessageDelivered, Detail: "released-use"})
	for _, c := range []CVE{CVE20141719, CVE20135602, CVE20104576, CVE20136646} {
		if !r.Exploited(c) {
			t.Errorf("%s not detected", c)
		}
	}
}

func TestCVE20141488TransferableUAF(t *testing.T) {
	r := NewRegistry()
	// UAF on a buffer that was never transferred: not this CVE.
	r.Trace(browser.TraceEvent{Kind: browser.TraceSharedBufferOp, Value: 7, Detail: "read:use-after-free"})
	if r.Exploited(CVE20141488) {
		t.Fatal("non-transferred UAF should not trigger")
	}
	r.Trace(browser.TraceEvent{Kind: browser.TraceTransferable, Value: 9, Detail: "to-parent"})
	r.Trace(browser.TraceEvent{Kind: browser.TraceSharedBufferOp, Value: 9, Detail: "read:use-after-free"})
	if !r.Exploited(CVE20141488) {
		t.Fatal("transferred-buffer UAF should trigger")
	}
}

func TestCVE20143194Race(t *testing.T) {
	r := NewRegistry()
	// Same thread: no race.
	r.Trace(browser.TraceEvent{Kind: browser.TraceSharedBufferOp, ThreadID: 1, Value: 3, At: 0, Detail: "write"})
	r.Trace(browser.TraceEvent{Kind: browser.TraceSharedBufferOp, ThreadID: 1, Value: 3, At: 10, Detail: "write"})
	if r.Exploited(CVE20143194) {
		t.Fatal("same-thread accesses are not a race")
	}
	// Different threads, read-read: no race.
	r.Trace(browser.TraceEvent{Kind: browser.TraceSharedBufferOp, ThreadID: 2, Value: 3, At: 20, Detail: "read"})
	r.Reset()
	r.Trace(browser.TraceEvent{Kind: browser.TraceSharedBufferOp, ThreadID: 1, Value: 3, At: 0, Detail: "read"})
	r.Trace(browser.TraceEvent{Kind: browser.TraceSharedBufferOp, ThreadID: 2, Value: 3, At: 10, Detail: "read"})
	if r.Exploited(CVE20143194) {
		t.Fatal("read-read is not a race")
	}
	// Different threads, overlapping, one write: race.
	r.Trace(browser.TraceEvent{Kind: browser.TraceSharedBufferOp, ThreadID: 1, Value: 3, At: 20, Detail: "write"})
	if !r.Exploited(CVE20143194) {
		t.Fatal("write overlapping cross-thread read should race")
	}
}

func TestCVE20143194FarApartNoRace(t *testing.T) {
	r := NewRegistry()
	r.Trace(browser.TraceEvent{Kind: browser.TraceSharedBufferOp, ThreadID: 1, Value: 3, At: 0, Detail: "write"})
	r.Trace(browser.TraceEvent{Kind: browser.TraceSharedBufferOp, ThreadID: 2, Value: 3, At: sim.Time(raceWindow) * 10, Detail: "write"})
	if r.Exploited(CVE20143194) {
		t.Fatal("well-separated accesses should not race")
	}
}

func TestArmedSubset(t *testing.T) {
	r := NewRegistry(CVE20177843)
	r.Trace(browser.TraceEvent{Kind: browser.TraceXHR, Detail: "cross-origin-worker"})
	if r.Exploited(CVE20131714) {
		t.Fatal("unarmed CVE should not be marked")
	}
	r.Trace(browser.TraceEvent{Kind: browser.TraceIndexedDBPut, Detail: "private-mode"})
	if !r.Exploited(CVE20177843) {
		t.Fatal("armed CVE should be marked")
	}
}

func TestExploitedAtRecordsFirstTime(t *testing.T) {
	r := NewRegistry()
	r.Trace(browser.TraceEvent{Kind: browser.TraceIndexedDBPut, Detail: "private-mode", At: 42})
	r.Trace(browser.TraceEvent{Kind: browser.TraceIndexedDBPut, Detail: "private-mode", At: 99})
	at, ok := r.ExploitedAt(CVE20177843)
	if !ok || at != 42 {
		t.Fatalf("ExploitedAt = %v, %v; want 42, true", at, ok)
	}
}

func TestResetClearsState(t *testing.T) {
	r := NewRegistry()
	r.Trace(browser.TraceEvent{Kind: browser.TraceIndexedDBPut, Detail: "private-mode"})
	r.Reset()
	if len(r.AllExploited()) != 0 {
		t.Fatal("reset did not clear exploitation state")
	}
	r.Trace(browser.TraceEvent{Kind: browser.TraceIndexedDBPut, Detail: "private-mode"})
	if !r.Exploited(CVE20177843) {
		t.Fatal("registry should still be armed after reset")
	}
}

func TestAllExploitedSorted(t *testing.T) {
	r := NewRegistry()
	r.Trace(browser.TraceEvent{Kind: browser.TraceXHR, Detail: "cross-origin-worker"})
	r.Trace(browser.TraceEvent{Kind: browser.TraceIndexedDBPut, Detail: "private-mode"})
	got := r.AllExploited()
	if len(got) != 2 || got[0] != CVE20131714 || got[1] != CVE20177843 {
		t.Fatalf("AllExploited = %v", got)
	}
}
