// Package vuln models the web-concurrency-attack CVEs from Table I of the
// paper as detectors over the browser's native-layer trace. Each CVE is a
// small state machine that fires ("exploited") when the vulnerability's
// triggering invocation sequence is observed at the native layer.
//
// Because detection happens below the interposition seam, a defense that
// rewrites or suppresses the relevant native calls (as JSKernel's policies
// do) prevents the sequence from ever appearing — which is exactly the
// paper's definition of defending a web concurrency attack.
package vuln

import (
	"sort"
	"strings"
	"sync"

	"jskernel/internal/browser"
	"jskernel/internal/sim"
)

// CVE identifies one modeled vulnerability.
type CVE string

// The 12 web concurrency attack CVEs evaluated in Table I.
const (
	CVE20185092 CVE = "CVE-2018-5092" // fetch abort into falsely terminated worker (UAF)
	CVE20177843 CVE = "CVE-2017-7843" // IndexedDB persists in private browsing
	CVE20157215 CVE = "CVE-2015-7215" // importScripts error leaks cross-origin URL
	CVE20143194 CVE = "CVE-2014-3194" // shared buffer data race between threads
	CVE20141719 CVE = "CVE-2014-1719" // worker terminated with messages in flight (UAF)
	CVE20141488 CVE = "CVE-2014-1488" // transferable freed with worker, used by main (UAF)
	CVE20141487 CVE = "CVE-2014-1487" // worker creation error leaks cross-origin info
	CVE20136646 CVE = "CVE-2013-6646" // worker handle GC'd with message in flight (UAF)
	CVE20135602 CVE = "CVE-2013-5602" // onmessage set on dead worker (null deref)
	CVE20131714 CVE = "CVE-2013-1714" // worker XHR bypasses same-origin policy
	CVE20111190 CVE = "CVE-2011-1190" // worker location exposes cross-origin redirect
	CVE20104576 CVE = "CVE-2010-4576" // worker message delivered after document teardown
)

// All returns every modeled CVE in a stable order.
func All() []CVE {
	return []CVE{
		CVE20185092, CVE20177843, CVE20157215, CVE20143194,
		CVE20141719, CVE20141488, CVE20141487, CVE20136646,
		CVE20135602, CVE20131714, CVE20111190, CVE20104576,
	}
}

// Description returns a one-line summary of a CVE's trigger.
func Description(c CVE) string {
	switch c {
	case CVE20185092:
		return "use-after-free: abort signal sent to a fetch whose worker was falsely terminated"
	case CVE20177843:
		return "private-browsing IndexedDB writes persist to disk"
	case CVE20157215:
		return "importScripts() error message discloses cross-origin URL details"
	case CVE20143194:
		return "data race on a shared buffer between worker and main thread"
	case CVE20141719:
		return "use-after-free: worker terminated while messages are in flight"
	case CVE20141488:
		return "use-after-free: transferable buffer freed with its worker, then used by main"
	case CVE20141487:
		return "worker creation error message discloses cross-origin information"
	case CVE20136646:
		return "use-after-free: worker object collected while a message is in flight"
	case CVE20135602:
		return "null dereference assigning onmessage to a terminated worker"
	case CVE20131714:
		return "worker XMLHttpRequest bypasses the same-origin policy"
	case CVE20111190:
		return "worker location discloses cross-origin redirect target"
	case CVE20104576:
		return "worker message delivered into a torn-down document"
	default:
		return "unknown vulnerability"
	}
}

// raceWindow is the virtual-time window within which shared-buffer
// accesses from two threads count as racing (CVE-2014-3194).
const raceWindow = 100 * sim.Microsecond

// bufAccess remembers the most recent access to a shared buffer.
type bufAccess struct {
	threadID int
	at       sim.Time
	write    bool
}

// Registry watches the native trace and records which armed CVEs had their
// triggering sequence reached. It is safe for use from a single simulation
// goroutine; the mutex guards cross-test reuse.
type Registry struct {
	mu        sync.Mutex
	armed     map[CVE]bool
	exploited map[CVE]sim.Time

	// per-CVE state machines
	orphanedWorkers map[int]bool   // workers terminated with pending fetch
	transferredBufs map[int64]bool // buffers transferred worker→parent
	lastBufAccess   map[int64]bufAccess
}

var _ browser.Tracer = (*Registry)(nil)

// NewRegistry arms the given CVEs; with no arguments it arms all of them.
func NewRegistry(cves ...CVE) *Registry {
	if len(cves) == 0 {
		cves = All()
	}
	r := &Registry{
		armed:           make(map[CVE]bool, len(cves)),
		exploited:       make(map[CVE]sim.Time),
		orphanedWorkers: make(map[int]bool),
		transferredBufs: make(map[int64]bool),
		lastBufAccess:   make(map[int64]bufAccess),
	}
	for _, c := range cves {
		r.armed[c] = true
	}
	return r
}

// NewUnarmedRegistry returns a registry with every detector disarmed: it
// still consumes the native trace (state machines advance so execution
// is byte-identical to an armed run) but marks nothing as exploited.
// Schedule exploration uses it to prove discoveries come from the
// happens-before detector alone, not from the scripted CVE oracles.
func NewUnarmedRegistry() *Registry {
	return &Registry{
		armed:           make(map[CVE]bool),
		exploited:       make(map[CVE]sim.Time),
		orphanedWorkers: make(map[int]bool),
		transferredBufs: make(map[int64]bool),
		lastBufAccess:   make(map[int64]bufAccess),
	}
}

// Exploited reports whether the CVE's trigger was reached.
func (r *Registry) Exploited(c CVE) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.exploited[c]
	return ok
}

// ExploitedAt returns the virtual time of first exploitation.
func (r *Registry) ExploitedAt(c CVE) (sim.Time, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	at, ok := r.exploited[c]
	return at, ok
}

// AllExploited lists every triggered CVE in stable order.
func (r *Registry) AllExploited() []CVE {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]CVE, 0, len(r.exploited))
	for c := range r.exploited {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Reset clears all exploitation state (armed set is preserved).
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.exploited = make(map[CVE]sim.Time)
	r.orphanedWorkers = make(map[int]bool)
	r.transferredBufs = make(map[int64]bool)
	r.lastBufAccess = make(map[int64]bufAccess)
}

// mark records an exploitation if the CVE is armed.
func (r *Registry) mark(c CVE, at sim.Time) {
	if !r.armed[c] {
		return
	}
	if _, done := r.exploited[c]; !done {
		r.exploited[c] = at
	}
}

// Trace consumes one native-layer event, advancing every armed detector.
func (r *Registry) Trace(ev browser.TraceEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()

	switch ev.Kind {
	case browser.TraceWorkerTerminated:
		if strings.Contains(ev.Detail, "pending-fetch") {
			r.orphanedWorkers[ev.WorkerID] = true
		}
		if strings.Contains(ev.Detail, "pending-messages") {
			r.mark(CVE20141719, ev.At)
		}

	case browser.TraceFetchAbort:
		if ev.Detail == "orphaned" {
			r.mark(CVE20185092, ev.At)
		}

	case browser.TraceIndexedDBPut:
		if ev.Detail == "private-mode" {
			r.mark(CVE20177843, ev.At)
		}

	case browser.TraceNavigationError:
		switch ev.Detail {
		case "leaky-error":
			r.mark(CVE20157215, ev.At)
		case "location-leak":
			r.mark(CVE20111190, ev.At)
		}

	case browser.TraceWorkerError:
		if ev.Detail == "cross-origin-create" {
			r.mark(CVE20141487, ev.At)
		}

	case browser.TraceOnMessageSet:
		if ev.Detail == "null-deref" {
			r.mark(CVE20135602, ev.At)
		}

	case browser.TraceXHR:
		if ev.Detail == "cross-origin-worker" {
			r.mark(CVE20131714, ev.At)
		}

	case browser.TraceMessageDelivered:
		switch ev.Detail {
		case "after-teardown":
			r.mark(CVE20104576, ev.At)
		case "released-use":
			r.mark(CVE20136646, ev.At)
		}

	case browser.TraceTransferable:
		if ev.Detail == "to-parent" {
			r.transferredBufs[ev.Value] = true
		}

	case browser.TraceSharedBufferOp:
		if strings.Contains(ev.Detail, "use-after-free") && r.transferredBufs[ev.Value] {
			r.mark(CVE20141488, ev.At)
		}
		r.checkRace(ev)
	}
}

// checkRace flags overlapping same-buffer accesses from different threads
// where at least one side writes (CVE-2014-3194).
func (r *Registry) checkRace(ev browser.TraceEvent) {
	write := strings.HasPrefix(ev.Detail, "write")
	prev, ok := r.lastBufAccess[ev.Value]
	if ok && prev.threadID != ev.ThreadID && ev.At-prev.at <= raceWindow && (write || prev.write) {
		r.mark(CVE20143194, ev.At)
	}
	r.lastBufAccess[ev.Value] = bufAccess{threadID: ev.ThreadID, at: ev.At, write: write}
}
