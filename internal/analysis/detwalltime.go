package analysis

import (
	"go/ast"
	"go/types"
)

// wallClockFuncs are the package time entry points that observe or wait
// on the real clock. Referencing any of them (call or function value)
// breaks determinism: the same program run twice sees different values,
// which is exactly the implicit clock the kernel exists to remove.
// Duration arithmetic, formatting, and constants (time.Millisecond,
// time.Duration, ParseDuration, ...) remain fine.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// wallClockAllowedPkgs are package-path suffixes where real time is
// legitimate by design. Extend deliberately, with a comment, if another
// wall-clock use case ever appears.
var wallClockAllowedPkgs = []string{
	// jsk-bench measures the real wall-clock speedup of the parallel
	// experiment runner — the one number in the repo that is *about*
	// real time. The experiments it times remain fully virtual-clocked.
	"cmd/jsk-bench",
	// The service layer's deadlines, Retry-After hints, circuit-breaker
	// cooldowns and drain timeouts are promises to real HTTP clients, so
	// they must live on the real clock. The simulations it runs stay on
	// virtual time, and nothing wall-clock-derived may appear in a
	// response body (pinned by the serve determinism tests).
	"internal/serve",
	"cmd/jsk-serve",
	// The observability plane lives on the service side of the
	// determinism boundary: its event hub timestamps nothing, but its
	// subscriber wait (Hub.Wait) and SSE keepalives are real-time
	// contracts with live scrape/stream clients. Nothing it computes
	// flows back into an evaluation or a response body — pinned by
	// TestResponseDeterminismAcrossPlaneModes in internal/serve.
	"internal/telemetry",
}

// DetWallTime rejects wall-clock observation outside the allowlist.
var DetWallTime = &Analyzer{
	Name: "detwalltime",
	Doc:  "forbid time.Now/Since/Sleep/After etc.; simulated code must use the virtual clock in internal/sim",
	Applies: func(pkgPath string) bool {
		for _, allowed := range wallClockAllowedPkgs {
			if hasPathSuffix(pkgPath, allowed) {
				return false
			}
		}
		return true
	},
	Run: runDetWallTime,
}

func runDetWallTime(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // method like t.Sub — operates on values, not the clock
			}
			if wallClockFuncs[obj.Name()] {
				p.Reportf(sel.Pos(), "time.%s observes the wall clock; deterministic code must use the virtual clock (internal/sim)", obj.Name())
			}
			return true
		})
	}
}
