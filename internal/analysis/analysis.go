// Package analysis is jsk-lint: a suite of static analyzers that turn
// the repository's determinism and kernel-survival conventions into
// machine-checked invariants. JSKernel's security argument (like
// Deterministic Browser's) collapses if any code path can observe wall
// clock time or nondeterministic ordering, so the analyzers reject the
// constructs that silently reintroduce those channels:
//
//   - detwalltime: wall-clock reads (time.Now etc.) outside the
//     allowlist — simulated code must use the virtual clock in
//     internal/sim.
//   - detrand: global math/rand functions — randomness must flow
//     through an explicitly seeded *rand.Rand stream.
//   - detmapiter: ranging over a map while producing order-sensitive
//     output (appends, prints, float accumulation) without a sort.
//   - detselect: select statements with two or more communication
//     cases in internal packages — the runtime picks among ready
//     cases uniformly at random.
//   - goroutinescope: go statements outside the scheduler/runtime
//     allowlist — stray goroutines race the discrete-event loop.
//   - panicsafe: raw Policy.Evaluate / Event.Callback invocations that
//     bypass the recover-wrapped helpers (safeEvaluate, dispatchUser).
//
// Intentional exceptions are annotated in source with
//
//	//jsk:lint-ignore <analyzer> <reason>
//
// which suppresses findings of that analyzer on the same line (when
// trailing code) or the next line (when on a line of its own). The
// reason is mandatory; malformed directives are themselves diagnostics,
// so every exception stays explicit and auditable.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding: a position, the analyzer that produced it,
// and a human-readable message.
type Diagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// String renders the canonical "file:line: [analyzer] message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Pass carries one type-checked package through one analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.diags = append(p.diags, Diagnostic{
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one static check.
type Analyzer struct {
	Name string
	Doc  string
	// Applies filters packages by import path; nil means every package.
	Applies func(pkgPath string) bool
	Run     func(*Pass)
}

// Analyzers returns the full jsk-lint suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DetWallTime,
		DetRand,
		DetMapIter,
		DetSelect,
		GoroutineScope,
		PanicSafe,
	}
}

// AnalyzerNames returns the valid analyzer names (for directive
// validation and -help output).
func AnalyzerNames() []string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return names
}

// RunPackage runs the given analyzers over one type-checked package and
// applies the //jsk:lint-ignore suppression pass: suppressed findings
// are dropped, malformed directives become findings of the pseudo
// analyzer "lint-ignore". Diagnostics come back sorted by position.
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	sup := parseSuppressions(fset, files, analyzerNameSet())
	for _, a := range analyzers {
		if a.Applies != nil && !a.Applies(pkg.Path()) {
			continue
		}
		pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, Info: info}
		a.Run(pass)
		for _, d := range pass.diags {
			if sup.suppressed(d.Analyzer, d.File, d.Line) {
				continue
			}
			diags = append(diags, d)
		}
	}
	diags = append(diags, sup.malformed...)
	sortDiagnostics(diags)
	return diags
}

func analyzerNameSet() map[string]bool {
	set := make(map[string]bool)
	for _, a := range Analyzers() {
		set[a.Name] = true
	}
	return set
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// hasPathSuffix reports whether pkgPath is path or ends in "/"+path —
// the matching rule for package allowlists, so "internal/sim" covers
// both "jskernel/internal/sim" and a bare "internal/sim".
func hasPathSuffix(pkgPath, path string) bool {
	if pkgPath == path {
		return true
	}
	n := len(pkgPath) - len(path)
	return n > 0 && pkgPath[n-1] == '/' && pkgPath[n:] == path
}
