package analysis

import (
	"strings"
	"testing"
)

// The suppression fixtures all use the same seeded detrand violation
// and vary only the directive, exercising the parser's placement and
// validation rules.

func TestSuppressionEndOfLinePlacement(t *testing.T) {
	diags := fixtures.run(t, "jskernel/internal/fixture", `package fixture

import "math/rand"

func f() int { return rand.Intn(10) } //jsk:lint-ignore detrand trailing directive suppresses its own line
`)
	wantFindings(t, diags)
}

func TestSuppressionPrecedingLinePlacement(t *testing.T) {
	diags := fixtures.run(t, "jskernel/internal/fixture", `package fixture

import "math/rand"

func f() int {
	//jsk:lint-ignore detrand standalone directive suppresses the next line
	return rand.Intn(10)
}
`)
	wantFindings(t, diags)
}

func TestSuppressionStandaloneDoesNotReachPastNextLine(t *testing.T) {
	diags := fixtures.run(t, "jskernel/internal/fixture", `package fixture

import "math/rand"

func f() int {
	//jsk:lint-ignore detrand directive covers only the line below
	x := 1
	return x + rand.Intn(10)
}
`)
	wantFindings(t, diags, [2]any{"detrand", 8})
}

func TestSuppressionCoversWrappedStatement(t *testing.T) {
	// The finding anchors at the rand.Intn call on the continuation line
	// of a wrapped assignment. Before the span fix, the standalone
	// directive covered only the statement's first line and the finding
	// leaked through — the off-by-one this test pins the fix for.
	diags := fixtures.run(t, "jskernel/internal/fixture", `package fixture

import "math/rand"

func pair(a int) (int, int) { return a, a }

func f() (int, int) {
	//jsk:lint-ignore detrand wrapped statement is covered end to end
	x, y := pair(
		rand.Intn(10))
	return x, y
}
`)
	wantFindings(t, diags)
}

func TestSuppressionTrailingCoversWrappedStatement(t *testing.T) {
	diags := fixtures.run(t, "jskernel/internal/fixture", `package fixture

import "math/rand"

func pair(a int) (int, int) { return a, a }

func f() (int, int) {
	x, y := pair( //jsk:lint-ignore detrand trailing directive covers the wrapped statement too
		rand.Intn(10))
	return x, y
}
`)
	wantFindings(t, diags)
}

func TestSuppressionDoesNotBlanketBlocks(t *testing.T) {
	// An if statement carries a body: the directive covers only the
	// header line, never the block, so the violation inside still flags.
	diags := fixtures.run(t, "jskernel/internal/fixture", `package fixture

import "math/rand"

func f(ok bool) int {
	//jsk:lint-ignore detrand block statements keep the single-line rule
	if ok {
		return rand.Intn(10)
	}
	return 0
}
`)
	wantFindings(t, diags, [2]any{"detrand", 8})
}

func TestSuppressionDoesNotReachIntoFuncLit(t *testing.T) {
	// A statement containing a multi-line function literal is not span
	// extended: the directive must not blanket the literal's body.
	diags := fixtures.run(t, "jskernel/internal/fixture", `package fixture

import "math/rand"

func f() func() int {
	//jsk:lint-ignore detrand literal bodies are never blanket-covered
	g := func() int {
		return rand.Intn(10)
	}
	return g
}
`)
	wantFindings(t, diags, [2]any{"detrand", 8})
}

func TestSuppressionWrongAnalyzerNameDoesNotSuppress(t *testing.T) {
	// detwalltime is a real analyzer, so the directive is well-formed —
	// but it must not silence a detrand finding.
	diags := fixtures.run(t, "jskernel/internal/fixture", `package fixture

import "math/rand"

func f() int { return rand.Intn(10) } //jsk:lint-ignore detwalltime wrong analyzer named here
`)
	wantFindings(t, diags, [2]any{"detrand", 5})
}

func TestSuppressionUnknownAnalyzerIsMalformed(t *testing.T) {
	diags := fixtures.run(t, "jskernel/internal/fixture", `package fixture

import "math/rand"

func f() int { return rand.Intn(10) } //jsk:lint-ignore nosuchcheck some reason
`)
	wantFindings(t, diags, [2]any{"detrand", 5}, [2]any{"lint-ignore", 5})
	if !strings.Contains(diags[1].Message, `unknown analyzer "nosuchcheck"`) {
		t.Errorf("malformed-directive message = %q", diags[1].Message)
	}
}

func TestSuppressionMissingReasonIsMalformed(t *testing.T) {
	diags := fixtures.run(t, "jskernel/internal/fixture", `package fixture

import "math/rand"

func f() int { return rand.Intn(10) } //jsk:lint-ignore detrand
`)
	// The reasonless directive does not suppress, and is itself flagged.
	wantFindings(t, diags, [2]any{"detrand", 5}, [2]any{"lint-ignore", 5})
	if !strings.Contains(diags[1].Message, "no reason") {
		t.Errorf("malformed-directive message = %q", diags[1].Message)
	}
}

func TestSuppressionEmptyDirectiveIsMalformed(t *testing.T) {
	diags := fixtures.run(t, "jskernel/internal/fixture", `package fixture

//jsk:lint-ignore
var x = 1
`)
	wantFindings(t, diags, [2]any{"lint-ignore", 3})
}

func TestSimilarCommentIsNotADirective(t *testing.T) {
	diags := fixtures.run(t, "jskernel/internal/fixture", `package fixture

// jsk:lint-ignorefoo is not our directive and must be ignored entirely.
var x = 1
`)
	wantFindings(t, diags)
}

func TestDirectiveTextParsing(t *testing.T) {
	cases := []struct {
		comment string
		want    string
		ok      bool
	}{
		{"//jsk:lint-ignore detrand reason", "detrand reason", true},
		{"// jsk:lint-ignore detrand reason", "detrand reason", true},
		{"/* jsk:lint-ignore detrand reason */", "detrand reason", true},
		{"//jsk:lint-ignore", "", true},
		{"//jsk:lint-ignoreX detrand r", "", false},
		{"// unrelated comment", "", false},
	}
	for _, c := range cases {
		got, ok := directiveText(c.comment)
		if got != c.want || ok != c.ok {
			t.Errorf("directiveText(%q) = (%q, %v), want (%q, %v)", c.comment, got, ok, c.want, c.ok)
		}
	}
}
