package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked repo package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Loader type-checks packages of the enclosing module using only the
// standard library: module-internal import paths are resolved against
// the module root and checked from source; everything else is delegated
// to the compiler's source importer (which compiles the standard
// library from GOROOT source, so no build cache or export data is
// needed). The plain source importer alone cannot do this job — it
// resolves paths through GOPATH and has no idea where a module lives.
type Loader struct {
	ModRoot string // absolute path of the module root (dir of go.mod)
	ModPath string // module path from go.mod, e.g. "jskernel"

	Fset *token.FileSet

	std  types.Importer
	pkgs map[string]*Package
	busy map[string]bool // import-cycle guard
}

// NewLoader builds a Loader rooted at modRoot. The module path is read
// from go.mod.
func NewLoader(modRoot string) (*Loader, error) {
	modRoot, err := filepath.Abs(modRoot)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(modRoot, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModRoot: modRoot,
		ModPath: modPath,
		Fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		busy:    make(map[string]bool),
	}, nil
}

// FindModuleRoot walks up from dir to the nearest go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// Import implements types.Importer over both module-internal and
// standard-library paths.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return l.std.Import(path)
}

// load type-checks one module-internal package (memoized).
func (l *Loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.busy[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.busy[path] = true
	defer delete(l.busy, path)

	rel := strings.TrimPrefix(path, l.ModPath)
	dir := filepath.Join(l.ModRoot, strings.TrimPrefix(rel, "/"))
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%s: no buildable Go files in %s", path, dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Files: files, Pkg: pkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// parseDir parses every non-test Go file of one directory, in name
// order so positions and diagnostics are reproducible.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Expand resolves "./dir/..." and "./dir" patterns (relative to the
// module root) into module import paths of directories that contain
// buildable Go files. testdata directories and dot-directories are
// skipped, as the go tool does.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var paths []string
	add := func(dir string) {
		rel, err := filepath.Rel(l.ModRoot, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return
		}
		var path string
		if rel == "." {
			path = l.ModPath
		} else {
			path = l.ModPath + "/" + filepath.ToSlash(rel)
		}
		if !seen[path] && hasGoFiles(dir) {
			seen[path] = true
			paths = append(paths, path)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(l.ModRoot, pat)
		}
		if !recursive {
			add(dir)
			continue
		}
		err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			base := filepath.Base(p)
			if p != dir && (strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_") || base == "testdata") {
				return filepath.SkipDir
			}
			add(p)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("expand %s: %w", pat, err)
		}
	}
	sort.Strings(paths)
	return paths, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") {
			return true
		}
	}
	return false
}

// Run loads every package matched by patterns and runs the full
// analyzer suite (plus the suppression pass) over each, returning all
// diagnostics sorted by position with file paths relative to the
// module root.
func (l *Loader) Run(patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	paths, err := l.Expand(patterns)
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no packages match %v", patterns)
	}
	var diags []Diagnostic
	for _, path := range paths {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		diags = append(diags, RunPackage(l.Fset, p.Files, p.Pkg, p.Info, analyzers)...)
	}
	for i := range diags {
		if rel, err := filepath.Rel(l.ModRoot, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = filepath.ToSlash(rel)
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}
