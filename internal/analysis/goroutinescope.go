package analysis

import "go/ast"

// goroutineAllowedPkgs are package-path suffixes allowed to start
// goroutines anywhere: the discrete-event runtime itself. Everything
// else must schedule work through the simulator — a stray goroutine
// races the event loop with real (nondeterministic) OS scheduling,
// which is precisely the concurrency channel the kernel removes.
var goroutineAllowedPkgs = []string{
	"internal/sim",
}

// goroutineSanctionedFuncs is the audited per-function allowlist: a
// package-path suffix mapped to the named top-level functions (or
// methods) inside it that may contain go statements, each with the
// audit rationale that sanctioned it. This is deliberately *not* a
// package waiver — a go statement anywhere else in these packages still
// flags, so new concurrency must come back through this table and its
// review.
//
// The common shape of a sanctioned function: its goroutines share no
// simulator or kernel state with each other (share-nothing cells, the
// runner.Map argument), and they are joined before the function's owner
// considers the work done — nothing outlives the structure that spawned
// it.
var goroutineSanctionedFuncs = map[string]map[string]string{
	"internal/serve": {
		// The evaluation worker pool: each goroutine owns one private
		// kernel.Environment, jobs arrive over a channel, and the pool is
		// joined (workers.Wait) during Shutdown.
		"startWorkers": "evaluation workers own disjoint environments and join at drain",
		// The HTTP accept loop: net/http requires Serve to run somewhere;
		// it is stopped by http.Server.Shutdown inside Server.Shutdown.
		"Start": "http.Server.Serve background loop, stopped by Shutdown",
		// A bounded WaitGroup wait so graceful drain can respect a
		// context deadline; the goroutine exits as soon as the drain
		// completes or is abandoned.
		"awaitDrain": "bounded drain wait; goroutine exits when jobs finish",
		// The telemetry smoke stage's live /v1/events subscriber: one
		// goroutine consuming the SSE stream, joined via its result
		// channel after the server drains.
		"smokeTelemetry": "event-stream subscriber joined on its result channel before return",
	},
	"internal/telemetry": {
		// The plane's batching flusher: one goroutine draining a bounded
		// channel of telemetry items, joined (<-p.done) by Plane.Close
		// before the hub shuts down. It owns the aggregation maps
		// exclusively; producers only send.
		"start": "single flusher goroutine over a bounded queue, joined by Close",
	},
	"internal/expr/runner": {
		// The sanctioned worker-pool bridge between the deterministic
		// world and OS threads (also annotated in source; listed here so
		// the audit trail lives in one table).
		"Map": "share-nothing cell workers, index-ordered results, joined before return",
	},
}

// GoroutineScope rejects `go` statements outside the scheduler
// allowlist and the audited per-function sanction table.
var GoroutineScope = &Analyzer{
	Name: "goroutinescope",
	Doc:  "forbid go statements outside the scheduler/runtime allowlist; use the discrete-event loop in internal/sim",
	Applies: func(pkgPath string) bool {
		for _, allowed := range goroutineAllowedPkgs {
			if hasPathSuffix(pkgPath, allowed) {
				return false
			}
		}
		return true
	},
	Run: runGoroutineScope,
}

// sanctionedFuncsFor returns the per-function sanction set matching the
// package, or nil.
func sanctionedFuncsFor(pkgPath string) map[string]string {
	for suffix, funcs := range goroutineSanctionedFuncs {
		if hasPathSuffix(pkgPath, suffix) {
			return funcs
		}
	}
	return nil
}

func runGoroutineScope(p *Pass) {
	sanctioned := sanctionedFuncsFor(p.Pkg.Path())
	report := func(root ast.Node, allowed bool) {
		ast.Inspect(root, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok && !allowed {
				p.Reportf(g.Pos(), "go statement outside the scheduler allowlist races the discrete-event loop; schedule through internal/sim instead")
			}
			return true
		})
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if fd.Body == nil {
					continue
				}
				allowed := sanctioned != nil && sanctioned[fd.Name.Name] != ""
				report(fd.Body, allowed)
				continue
			}
			// go statements can also hide in function literals inside
			// var/const initializers; those are never sanctioned.
			report(decl, false)
		}
	}
}
