package analysis

import "go/ast"

// goroutineAllowedPkgs are package-path suffixes allowed to start
// goroutines: the discrete-event runtime itself. Everything else must
// schedule work through the simulator — a stray goroutine races the
// event loop with real (nondeterministic) OS scheduling, which is
// precisely the concurrency channel the kernel removes.
var goroutineAllowedPkgs = []string{
	"internal/sim",
}

// GoroutineScope rejects `go` statements outside the scheduler
// allowlist.
var GoroutineScope = &Analyzer{
	Name: "goroutinescope",
	Doc:  "forbid go statements outside the scheduler/runtime allowlist; use the discrete-event loop in internal/sim",
	Applies: func(pkgPath string) bool {
		for _, allowed := range goroutineAllowedPkgs {
			if hasPathSuffix(pkgPath, allowed) {
				return false
			}
		}
		return true
	},
	Run: runGoroutineScope,
}

func runGoroutineScope(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				p.Reportf(g.Pos(), "go statement outside the scheduler allowlist races the discrete-event loop; schedule through internal/sim instead")
			}
			return true
		})
	}
}
