package analysis

import (
	"go/ast"
	"go/types"
)

// panicSafePkgs are the package-path suffixes PanicSafe patrols: the
// layers that invoke code the kernel does not control (security
// policies and user callbacks).
var panicSafePkgs = []string{
	"internal/kernel",
	"internal/browser",
}

// panicSafeWrappers maps the guarded call kind to the one function
// allowed to make it raw — the recover-wrapped helper from the kernel
// survival hardening (PR 1).
var panicSafeWrappers = map[string]string{
	"Policy.Evaluate": "safeEvaluate",
	"Event.Callback":  "dispatchUser",
}

// PanicSafe rejects raw invocations of foreign code in the kernel and
// browser layers. A policy's Evaluate or a user callback that panics
// outside the recover-wrapped helpers unwinds the dispatcher — the
// exact denial-of-service the survival hardening closed. Policies must
// be consulted through Shared.safeEvaluate (via Shared.evaluate);
// released event callbacks must run through Kernel.dispatchUser.
var PanicSafe = &Analyzer{
	Name: "panicsafe",
	Doc:  "forbid raw Policy.Evaluate / Event.Callback calls in kernel+browser; use the recover-wrapped helpers",
	Applies: func(pkgPath string) bool {
		for _, patrolled := range panicSafePkgs {
			if hasPathSuffix(pkgPath, patrolled) {
				return true
			}
		}
		return false
	},
	Run: runPanicSafe,
}

func runPanicSafe(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				switch {
				case isPolicyEvaluate(p, sel):
					if fd.Name.Name != panicSafeWrappers["Policy.Evaluate"] {
						p.Reportf(call.Pos(), "raw Policy.Evaluate call: a panicking policy would unwind the dispatcher; consult the policy through Shared.evaluate (recover-wrapped by safeEvaluate)")
					}
				case isEventCallback(p, sel):
					if fd.Name.Name != panicSafeWrappers["Event.Callback"] {
						p.Reportf(call.Pos(), "raw Event.Callback invocation: a panicking user callback would unwind the dispatcher; release events through Kernel.dispatchUser")
					}
				}
				return true
			})
		}
	}
}

// isPolicyEvaluate reports whether sel is a call target of the form
// <Policy value>.Evaluate where Policy is the kernel's policy
// interface.
func isPolicyEvaluate(p *Pass, sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "Evaluate" {
		return false
	}
	return isKernelNamed(deref(p.Info.TypeOf(sel.X)), "Policy")
}

// isEventCallback reports whether sel selects the Callback field of the
// kernel's Event type.
func isEventCallback(p *Pass, sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "Callback" {
		return false
	}
	selection, ok := p.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return false
	}
	return isKernelNamed(deref(selection.Recv()), "Event")
}

// isKernelNamed reports whether t is the named type internal/kernel.<name>.
func isKernelNamed(t types.Type, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && hasPathSuffix(obj.Pkg().Path(), "internal/kernel")
}

func deref(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}
