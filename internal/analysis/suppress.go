package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignoreDirective is the comment prefix that suppresses one analyzer's
// findings on one line. Full form:
//
//	//jsk:lint-ignore <analyzer> <reason>
//
// Placed at the end of a code line it suppresses that line; placed on a
// line of its own it suppresses the line that follows. The reason is
// mandatory and the analyzer name must be real — violations of either
// rule are reported as "lint-ignore" diagnostics so a suppression can
// never silently rot.
//
// When the targeted line begins a simple statement that continues over
// several lines (a wrapped call, assignment, or return), the directive
// covers the statement's whole line span: analyzers anchor findings at
// the offending expression, which on a wrapped statement can sit lines
// below the statement keyword, and a directive that names the statement
// should cover all of it. Block-carrying statements (if, for, switch,
// select) and statements containing multi-line function literals keep
// the single-line rule — a directive must never blanket a body.
const ignoreDirective = "jsk:lint-ignore"

// suppressions indexes parsed directives for one package.
type suppressions struct {
	// byKey maps "analyzer\x00file\x00line" → directive present.
	byKey map[string]bool
	// malformed holds diagnostics for broken directives.
	malformed []Diagnostic
}

func (s *suppressions) suppressed(analyzer, file string, line int) bool {
	return s.byKey[supKey(analyzer, file, line)]
}

func supKey(analyzer, file string, line int) string {
	return analyzer + "\x00" + file + "\x00" + itoa(line)
}

// itoa avoids strconv for this hot, tiny case.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// parseSuppressions scans every comment in the package for ignore
// directives. valid is the set of real analyzer names.
func parseSuppressions(fset *token.FileSet, files []*ast.File, valid map[string]bool) *suppressions {
	sup := &suppressions{byKey: make(map[string]bool)}
	for _, f := range files {
		codeLines := codeLineSet(fset, f)
		spans := simpleStmtSpans(fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := directiveText(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) == 0 {
					sup.malformed = append(sup.malformed, Diagnostic{
						File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Analyzer: "lint-ignore",
						Message:  "directive names no analyzer; want //jsk:lint-ignore <analyzer> <reason>",
					})
					continue
				}
				name := fields[0]
				if !valid[name] {
					sup.malformed = append(sup.malformed, Diagnostic{
						File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Analyzer: "lint-ignore",
						Message:  "unknown analyzer \"" + name + "\" in suppression; valid: " + strings.Join(AnalyzerNames(), ", "),
					})
					continue
				}
				if len(fields) < 2 {
					sup.malformed = append(sup.malformed, Diagnostic{
						File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Analyzer: "lint-ignore",
						Message:  "suppression of " + name + " gives no reason; every exception must say why",
					})
					continue
				}
				// A trailing comment suppresses its own line; a comment on
				// a line of its own suppresses the next line. Either way,
				// if the target line opens a multi-line simple statement
				// the directive covers the statement's full span.
				target := pos.Line
				if !codeLines[pos.Line] {
					target = pos.Line + 1
				}
				end := target
				if e, ok := spans[target]; ok {
					end = e
				}
				for line := target; line <= end; line++ {
					sup.byKey[supKey(name, pos.Filename, line)] = true
				}
			}
		}
	}
	return sup
}

// directiveText extracts the directive payload from a comment, or
// reports that the comment is not a directive.
func directiveText(comment string) (string, bool) {
	var body string
	switch {
	case strings.HasPrefix(comment, "//"):
		body = comment[2:]
	case strings.HasPrefix(comment, "/*"):
		body = strings.TrimSuffix(comment[2:], "*/")
	default:
		return "", false
	}
	body = strings.TrimSpace(body)
	if !strings.HasPrefix(body, ignoreDirective) {
		return "", false
	}
	rest := body[len(ignoreDirective):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false // e.g. jsk:lint-ignorex — a different word
	}
	return strings.TrimSpace(rest), true
}

// simpleStmtSpans maps the start line of every multi-line simple
// statement to its end line. Only statements without bodies of their
// own qualify — expression and assignment statements, returns, sends,
// increments, go/defer, and declarations — and only when they contain
// no multi-line function literal: extending a directive over a literal's
// body would blanket-suppress code the directive never named. Block
// statements (if, for, switch, select, range) are deliberately absent,
// which is what keeps TestSuppressionStandaloneDoesNotReachPastNextLine
// true: the old off-by-one was a directive above a wrapped statement
// missing findings anchored on its continuation lines, not a license to
// cover whole blocks.
func simpleStmtSpans(fset *token.FileSet, f *ast.File) map[int]int {
	spans := make(map[int]int)
	mark := func(n ast.Node) {
		start := fset.Position(n.Pos()).Line
		end := fset.Position(n.End()).Line
		if end <= start || containsMultiLineFuncLit(fset, n) {
			return
		}
		if cur, ok := spans[start]; !ok || end > cur {
			spans[start] = end
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ExprStmt, *ast.AssignStmt, *ast.ReturnStmt, *ast.IncDecStmt,
			*ast.SendStmt, *ast.GoStmt, *ast.DeferStmt, *ast.DeclStmt, *ast.GenDecl:
			mark(n)
		}
		return true
	})
	return spans
}

// containsMultiLineFuncLit reports whether n encloses a function
// literal spanning more than one line.
func containsMultiLineFuncLit(fset *token.FileSet, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		if fl, ok := c.(*ast.FuncLit); ok {
			if fset.Position(fl.End()).Line > fset.Position(fl.Pos()).Line {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// codeLineSet records which lines of a file carry code tokens, so a
// directive can tell "trailing comment" apart from "own line". Every
// node's start and end line is marked; comments are excluded by
// construction (ast.Inspect does not descend into them unless they are
// in f.Comments, which we never visit here).
func codeLineSet(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		switch n.(type) {
		case *ast.Comment, *ast.CommentGroup:
			return false
		}
		switch n.(type) {
		case *ast.Ident, *ast.BasicLit, *ast.BlockStmt, *ast.CompositeLit,
			*ast.CallExpr, *ast.ReturnStmt, *ast.BranchStmt, *ast.StructType,
			*ast.InterfaceType, *ast.FuncType:
			lines[fset.Position(n.Pos()).Line] = true
			lines[fset.Position(n.End()).Line] = true
		}
		return true
	})
	return lines
}
