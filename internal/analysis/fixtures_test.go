package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// fixtureChecker type-checks in-memory fixture snippets. One shared
// instance keeps the (source-compiled) stdlib import cache warm across
// tests.
type fixtureChecker struct {
	fset *token.FileSet
	imp  types.Importer
}

var fixtures = func() *fixtureChecker {
	fset := token.NewFileSet()
	return &fixtureChecker{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}()

// run type-checks src as a package with import path pkgPath and runs
// the full suite (suppression pass included) over it.
func (fc *fixtureChecker) run(t *testing.T, pkgPath, src string) []Diagnostic {
	t.Helper()
	f, err := parser.ParseFile(fc.fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: fc.imp}
	pkg, err := conf.Check(pkgPath, fc.fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck fixture: %v", err)
	}
	return RunPackage(fc.fset, []*ast.File{f}, pkg, info, Analyzers())
}

// wantFindings asserts the diagnostics carry exactly the given
// (analyzer, line) pairs, in order.
func wantFindings(t *testing.T, diags []Diagnostic, want ...[2]any) {
	t.Helper()
	if len(diags) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%s", len(diags), len(want), renderDiags(diags))
	}
	for i, w := range want {
		analyzer, line := w[0].(string), w[1].(int)
		if diags[i].Analyzer != analyzer || diags[i].Line != line {
			t.Errorf("finding %d = %s at line %d, want %s at line %d", i, diags[i].Analyzer, diags[i].Line, analyzer, line)
		}
	}
}

func renderDiags(diags []Diagnostic) string {
	var sb strings.Builder
	for _, d := range diags {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

func TestDetWallTime(t *testing.T) {
	t.Run("true positives and clean duration math", func(t *testing.T) {
		diags := fixtures.run(t, "jskernel/internal/fixture", `package fixture

import "time"

func bad() time.Time { return time.Now() }

func alsoBad(f func() <-chan time.Time) {
	_ = time.After(time.Second)
}

func fine(d time.Duration) time.Duration { return d * 2 }

func methodsFine(a, b time.Time) time.Duration { return a.Sub(b) }
`)
		wantFindings(t, diags, [2]any{"detwalltime", 5}, [2]any{"detwalltime", 8})
	})
	t.Run("suppressed with reason", func(t *testing.T) {
		diags := fixtures.run(t, "jskernel/internal/fixture", `package fixture

import "time"

func sup() time.Time {
	return time.Now() //jsk:lint-ignore detwalltime fixture demonstrates a sanctioned exception
}
`)
		wantFindings(t, diags)
	})
	t.Run("function value reference is flagged too", func(t *testing.T) {
		diags := fixtures.run(t, "jskernel/internal/fixture", `package fixture

import "time"

var clock = time.Now
`)
		wantFindings(t, diags, [2]any{"detwalltime", 5})
	})
	t.Run("service layer is allowlisted", func(t *testing.T) {
		// internal/serve lives on the wall clock by design: deadlines and
		// Retry-After hints are promises to real clients.
		diags := fixtures.run(t, "jskernel/internal/serve", `package serve

import "time"

func deadline(budget time.Duration) time.Time { return time.Now().Add(budget) }
`)
		wantFindings(t, diags)
	})
}

func TestDetRand(t *testing.T) {
	t.Run("global draw flagged, seeded stream clean", func(t *testing.T) {
		diags := fixtures.run(t, "jskernel/internal/fixture", `package fixture

import "math/rand"

func bad() int { return rand.Intn(10) }

func good(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}
`)
		wantFindings(t, diags, [2]any{"detrand", 5})
	})
	t.Run("suppressed with reason", func(t *testing.T) {
		diags := fixtures.run(t, "jskernel/internal/fixture", `package fixture

import "math/rand"

func sup() float64 {
	//jsk:lint-ignore detrand fixture demonstrates a sanctioned exception
	return rand.Float64()
}
`)
		wantFindings(t, diags)
	})
}

func TestDetMapIter(t *testing.T) {
	t.Run("unsorted append flagged, append-then-sort clean", func(t *testing.T) {
		diags := fixtures.run(t, "jskernel/internal/fixture", `package fixture

import "sort"

func bad(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func good(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
`)
		wantFindings(t, diags, [2]any{"detmapiter", 8})
	})
	t.Run("float accumulation flagged, integer counting clean", func(t *testing.T) {
		diags := fixtures.run(t, "jskernel/internal/fixture", `package fixture

func bad(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}

func count(m map[string]float64) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func intSum(m map[string]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}
`)
		wantFindings(t, diags, [2]any{"detmapiter", 6})
	})
	t.Run("printing and writing flagged", func(t *testing.T) {
		diags := fixtures.run(t, "jskernel/internal/fixture", `package fixture

import (
	"fmt"
	"strings"
)

func bad(m map[string]int) string {
	var sb strings.Builder
	for k, v := range m {
		fmt.Fprintf(&sb, "%s=%d;", k, v)
	}
	return sb.String()
}

func alsoBad(m map[string]int) string {
	var sb strings.Builder
	for k := range m {
		sb.WriteString(k)
	}
	return sb.String()
}
`)
		wantFindings(t, diags, [2]any{"detmapiter", 11}, [2]any{"detmapiter", 19})
	})
	t.Run("map-to-map transfer is clean", func(t *testing.T) {
		diags := fixtures.run(t, "jskernel/internal/fixture", `package fixture

func transfer(src map[string]int) map[string]int {
	dst := make(map[string]int, len(src))
	for k, v := range src {
		dst[k] = v
	}
	return dst
}
`)
		wantFindings(t, diags)
	})
	t.Run("suppressed with reason", func(t *testing.T) {
		diags := fixtures.run(t, "jskernel/internal/fixture", `package fixture

func sup(m map[string][]int, key string) []int {
	var out []int
	for k, vs := range m {
		if k != key {
			continue
		}
		//jsk:lint-ignore detmapiter only the single matching key ever appends
		out = append(out, vs...)
	}
	return out
}
`)
		wantFindings(t, diags)
	})
}

func TestDetSelect(t *testing.T) {
	t.Run("multi-way select flagged, deterministic poll clean", func(t *testing.T) {
		diags := fixtures.run(t, "jskernel/internal/fixture", `package fixture

func bad(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func poll(a chan int) (int, bool) {
	select {
	case v := <-a:
		return v, true
	default:
		return 0, false
	}
}

func blockingRecv(a chan int) int {
	select {
	case v := <-a:
		return v
	}
}
`)
		wantFindings(t, diags, [2]any{"detselect", 4})
	})
	t.Run("suppressed with reason", func(t *testing.T) {
		diags := fixtures.run(t, "jskernel/internal/fixture", `package fixture

func sup(a, b chan int) int {
	//jsk:lint-ignore detselect fixture demonstrates a sanctioned exception
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}
`)
		wantFindings(t, diags)
	})
	t.Run("commands are out of scope", func(t *testing.T) {
		diags := fixtures.run(t, "jskernel/cmd/fixture", `package main

func race(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}
`)
		wantFindings(t, diags)
	})
}

func TestGoroutineScope(t *testing.T) {
	t.Run("go statement flagged outside allowlist", func(t *testing.T) {
		diags := fixtures.run(t, "jskernel/internal/fixture", `package fixture

func bad(f func()) {
	go f()
}
`)
		wantFindings(t, diags, [2]any{"goroutinescope", 4})
	})
	t.Run("scheduler package is allowlisted", func(t *testing.T) {
		diags := fixtures.run(t, "jskernel/internal/sim", `package sim

func runtimeHelper(f func()) {
	go f()
}
`)
		wantFindings(t, diags)
	})
	t.Run("suppressed with reason", func(t *testing.T) {
		diags := fixtures.run(t, "jskernel/internal/fixture", `package fixture

func sup(f func()) {
	go f() //jsk:lint-ignore goroutinescope fixture demonstrates a sanctioned exception
}
`)
		wantFindings(t, diags)
	})
	t.Run("sanctioned serve function passes", func(t *testing.T) {
		// startWorkers is on the audited per-function allowlist for
		// internal/serve: a go statement inside it is sanctioned.
		diags := fixtures.run(t, "jskernel/internal/serve", `package serve

func startWorkers(f func()) {
	go f()
}
`)
		wantFindings(t, diags)
	})
	t.Run("unsanctioned serve goroutine still flags", func(t *testing.T) {
		// The sanction table is per-function, not a package waiver: the
		// same go statement in a function that is not on the list flags,
		// even though startWorkers in the same package is sanctioned.
		diags := fixtures.run(t, "jskernel/internal/serve", `package serve

func startWorkers(f func()) {
	go f()
}

func handleEval(f func()) {
	go f()
}
`)
		wantFindings(t, diags, [2]any{"goroutinescope", 8})
	})
	t.Run("sanctioned name in another package still flags", func(t *testing.T) {
		// The sanction is keyed by (package, function), so reusing the
		// name elsewhere buys nothing.
		diags := fixtures.run(t, "jskernel/internal/fixture", `package fixture

func startWorkers(f func()) {
	go f()
}
`)
		wantFindings(t, diags, [2]any{"goroutinescope", 4})
	})
	t.Run("goroutine in var initializer flags", func(t *testing.T) {
		// go statements outside any declared function (function literals
		// in var initializers) are never sanctioned.
		diags := fixtures.run(t, "jskernel/internal/serve", `package serve

var spawn = func(f func()) {
	go f()
}
`)
		wantFindings(t, diags, [2]any{"goroutinescope", 4})
	})
}

// panicSafeFixture declares just enough of the kernel package's shape
// for the analyzer's type predicates to engage: the Policy interface,
// the Event type, and the two sanctioned wrapper functions.
const panicSafeFixture = `package kernel

type CallContext struct{}
type Verdict struct{}

type Policy interface {
	Evaluate(CallContext) Verdict
}

type Global struct{}

type Event struct {
	Callback func(*Global, any)
}

type Shared struct{ policy Policy }

func (s *Shared) safeEvaluate(ctx CallContext) Verdict {
	return s.policy.Evaluate(ctx) // allowed: the recover-wrapped helper
}

func (s *Shared) leak(ctx CallContext) Verdict {
	return s.policy.Evaluate(ctx) // finding: raw policy call
}

type Kernel struct {
	g      *Global
	shared *Shared
}

func (k *Kernel) dispatchUser(ev *Event) {
	ev.Callback(k.g, nil) // allowed: the recover-wrapped helper
}

func (k *Kernel) raw(ev *Event) {
	ev.Callback(k.g, nil) // finding: bypasses panic isolation
}
`

func TestPanicSafe(t *testing.T) {
	t.Run("raw calls flagged, wrappers allowed", func(t *testing.T) {
		diags := fixtures.run(t, "jskernel/internal/kernel", panicSafeFixture)
		wantFindings(t, diags, [2]any{"panicsafe", 23}, [2]any{"panicsafe", 36})
	})
	t.Run("outside kernel and browser the analyzer stays quiet", func(t *testing.T) {
		diags := fixtures.run(t, "jskernel/internal/policy", strings.Replace(panicSafeFixture, "package kernel", "package policy", 1))
		wantFindings(t, diags)
	})
	t.Run("suppressed with reason", func(t *testing.T) {
		src := strings.Replace(panicSafeFixture,
			"\tev.Callback(k.g, nil) // finding: bypasses panic isolation",
			"\t//jsk:lint-ignore panicsafe fixture demonstrates a sanctioned exception\n\tev.Callback(k.g, nil)", 1)
		src = strings.Replace(src,
			"\treturn s.policy.Evaluate(ctx) // finding: raw policy call",
			"\treturn s.policy.Evaluate(ctx) //jsk:lint-ignore panicsafe fixture demonstrates a sanctioned exception", 1)
		diags := fixtures.run(t, "jskernel/internal/kernel", src)
		wantFindings(t, diags)
	})
}
