package analysis

import (
	"go/ast"
	"strings"
)

// DetSelect flags select statements with two or more communication
// cases inside internal/... packages. When several cases are ready at
// once the Go runtime picks one uniformly at random, so a multi-way
// select is a nondeterminism source exactly like an unseeded rand draw:
// replaying the same virtual-time schedule can take a different arm and
// diverge byte-for-byte identical runs. The sanctioned shapes are
//
//   - a single communication case (blocking receive/send: no choice),
//   - a single case plus default (a deterministic poll),
//   - the kernel's own event queue, which totally orders deliveries.
//
// Service-layer code that genuinely multiplexes OS-level channels
// (request completion vs. context cancellation) carries an explicit
// //jsk:lint-ignore detselect directive with its justification, keeping
// every racy select audited.
var DetSelect = &Analyzer{
	Name:    "detselect",
	Doc:     "forbid multi-way select (runtime-randomized choice) in internal packages",
	Applies: isInternalPkg,
	Run:     runDetSelect,
}

// isInternalPkg reports whether pkgPath sits under an internal/ tree
// (e.g. "jskernel/internal/serve"). Command mains and external code are
// out of scope: the determinism argument is about the simulation and
// its libraries.
func isInternalPkg(pkgPath string) bool {
	return strings.HasPrefix(pkgPath, "internal/") ||
		strings.Contains(pkgPath, "/internal/")
}

func runDetSelect(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectStmt)
			if !ok {
				return true
			}
			comms := 0
			for _, clause := range sel.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
					comms++
				}
			}
			if comms >= 2 {
				p.Reportf(sel.Pos(), "select with %d communication cases resolves ready cases in runtime-randomized order; restructure to a single case (plus default for polling) or suppress with a justification", comms)
			}
			return true
		})
	}
}
