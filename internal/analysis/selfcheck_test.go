package analysis

import (
	"os"
	"testing"
)

// TestRepoSelfCheck runs the full jsk-lint suite over the repository's
// own ./internal/... and ./cmd/... trees and requires zero unsuppressed
// findings. This is the enforcement teeth: any future time.Now, global
// rand draw, stray goroutine, unsorted order-sensitive map walk, or raw
// policy/callback invocation fails the tier-1 test run, not just the
// lint target.
func TestRepoSelfCheck(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	modRoot, err := FindModuleRoot(wd)
	if err != nil {
		t.Fatalf("find module root: %v", err)
	}
	loader, err := NewLoader(modRoot)
	if err != nil {
		t.Fatalf("new loader: %v", err)
	}
	diags, err := loader.Run([]string{"./internal/...", "./cmd/..."}, Analyzers())
	if err != nil {
		t.Fatalf("run analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d.String())
	}
	if len(diags) > 0 {
		t.Fatalf("%d unsuppressed finding(s); fix the code or add a //jsk:lint-ignore with a reason", len(diags))
	}
}

// TestExpandPatterns pins the pattern expansion the driver relies on.
func TestExpandPatterns(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	modRoot, err := FindModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(modRoot)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := loader.Expand([]string{"./internal/...", "./cmd/..."})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"jskernel/internal/analysis": false,
		"jskernel/internal/kernel":   false,
		"jskernel/internal/sim":      false,
		"jskernel/cmd/jsk-lint":      false,
		"jskernel/cmd/jsk-eval":      false,
	}
	for _, p := range paths {
		if _, ok := want[p]; ok {
			want[p] = true
		}
	}
	for p, seen := range want {
		if !seen {
			t.Errorf("Expand did not surface %s (got %v)", p, paths)
		}
	}
}
