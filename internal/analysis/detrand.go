package analysis

import (
	"go/ast"
	"go/types"
)

// randConstructors are the math/rand package-level functions that build
// an explicit generator rather than draw from the global one. They are
// the sanctioned path: rand.New(rand.NewSource(seed)).
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true, // takes the *rand.Rand explicitly
}

// DetRand rejects the global math/rand convenience functions. The
// global generator is seeded from runtime entropy (and shared across
// the process), so any draw from it makes a run irreproducible; every
// stream in this repo must be an explicitly seeded *rand.Rand (see the
// per-layer splitmix64 streams in internal/fault for the idiom).
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "forbid global math/rand functions; randomness must flow through a seeded *rand.Rand",
	Run:  runDetRand,
}

func runDetRand(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil {
				return true
			}
			path := obj.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // method on an explicit *rand.Rand — the sanctioned form
			}
			if randConstructors[obj.Name()] {
				return true
			}
			p.Reportf(sel.Pos(), "global %s.%s draws from the process-wide generator; use a seeded *rand.Rand stream", path, obj.Name())
			return true
		})
	}
}
