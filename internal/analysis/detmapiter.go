package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetMapIter flags ranging over a map while producing order-sensitive
// output. Go randomizes map iteration order on every loop, so anything
// the body emits in iteration order — elements appended to a slice,
// bytes printed or written, floats accumulated (addition is not
// associative) — differs from run to run and breaks the byte-identical
// replay guarantee. The sanctioned idiom is to collect the keys, sort
// them, and range over the sorted slice; a loop that appends to a
// variable which is demonstrably sorted later in the same file is
// accepted as that idiom's first half.
//
// Order-insensitive bodies (counting, map-to-map transfer, lookups,
// integer sums, `x++` tallies) pass untouched.
var DetMapIter = &Analyzer{
	Name: "detmapiter",
	Doc:  "forbid order-sensitive output from map iteration without an intervening sort",
	Run:  runDetMapIter,
}

func runDetMapIter(p *Pass) {
	for _, f := range p.Files {
		sorted := collectSortCalls(p, f)
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMapType(p.Info.TypeOf(rs.X)) {
				return true
			}
			checkMapRange(p, rs, sorted)
			return true
		})
	}
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// sortedObj records one "sort.X(args)" / "slices.X(args)" call and the
// variable objects it touches, so an append-then-sort idiom can be
// recognized.
type sortedObj struct {
	obj types.Object
	pos token.Pos
}

func collectSortCalls(p *Pass, f *ast.File) []sortedObj {
	var out []sortedObj
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj, ok := p.Info.Uses[sel.Sel].(*types.Func)
		if !ok || obj.Pkg() == nil {
			return true
		}
		if path := obj.Pkg().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok {
					if vo, ok := p.Info.Uses[id].(*types.Var); ok {
						out = append(out, sortedObj{obj: vo, pos: call.Pos()})
					}
				}
				return true
			})
		}
		return true
	})
	return out
}

func sortedAfter(sorted []sortedObj, obj types.Object, after token.Pos) bool {
	for _, s := range sorted {
		if s.obj == obj && s.pos > after {
			return true
		}
	}
	return false
}

// writerMethods are ordered-sink methods: each call emits bytes whose
// position in the output depends on iteration order.
var writerMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
}

// checkMapRange scans one map-range body for ordered sinks. Nested map
// ranges are skipped here — the outer Inspect visits them and they are
// judged (and attributed) on their own.
func checkMapRange(p *Pass, rs *ast.RangeStmt, sorted []sortedObj) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if isMapType(p.Info.TypeOf(n.X)) {
				return false
			}
		case *ast.SendStmt:
			p.Reportf(n.Pos(), "channel send inside map iteration: delivery order follows the randomized map order; iterate sorted keys instead")
		case *ast.AssignStmt:
			checkFloatAccum(p, n)
		case *ast.CallExpr:
			checkOrderedCall(p, rs, n, sorted)
		}
		return true
	})
}

// checkFloatAccum flags `f += expr` (and -=, *=, /=) on floating-point
// targets: float arithmetic is not associative, so accumulating in map
// order perturbs low-order bits between runs. Integer accumulation and
// `x++` counting are exact and pass.
func checkFloatAccum(p *Pass, as *ast.AssignStmt) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return
	}
	for _, lhs := range as.Lhs {
		t := p.Info.TypeOf(lhs)
		if t == nil {
			continue
		}
		if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&(types.IsFloat|types.IsComplex) != 0 {
			p.Reportf(as.Pos(), "floating-point accumulation in map iteration order is not associative and differs between runs; iterate sorted keys instead")
			return
		}
	}
}

func checkOrderedCall(p *Pass, rs *ast.RangeStmt, call *ast.CallExpr, sorted []sortedObj) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		// Builtin append: elements land in map iteration order.
		if b, ok := p.Info.Uses[fun].(*types.Builtin); ok && b.Name() == "append" && len(call.Args) > 0 {
			if id, ok := call.Args[0].(*ast.Ident); ok {
				if vo, ok := p.Info.Uses[id].(*types.Var); ok && sortedAfter(sorted, vo, rs.End()) {
					return // append-then-sort idiom
				}
			}
			p.Reportf(call.Pos(), "append inside map iteration produces map-ordered elements and no later sort was found; iterate sorted keys (or sort the result) instead")
		}
	case *ast.SelectorExpr:
		obj, ok := p.Info.Uses[fun.Sel].(*types.Func)
		if !ok {
			return
		}
		sig, _ := obj.Type().(*types.Signature)
		isMethod := sig != nil && sig.Recv() != nil
		if !isMethod && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			p.Reportf(call.Pos(), "fmt.%s inside map iteration emits output in randomized map order; iterate sorted keys instead", obj.Name())
			return
		}
		if isMethod && writerMethods[obj.Name()] {
			p.Reportf(call.Pos(), "%s call inside map iteration writes bytes in randomized map order; iterate sorted keys instead", obj.Name())
		}
	}
}
