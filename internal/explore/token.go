package explore

import (
	"fmt"
	"strconv"
	"strings"

	"jskernel/internal/vuln"
)

// Replay tokens are the minimal self-contained witness of a discovered
// schedule:
//
//	v1:<cve>:<defense>:<rootSeed>:<choice-vector>
//
// The choice vector is dot-separated decisions ("0.2.1"), or "-" when
// empty — every decision the replay chooser does not cover defaults to
// index 0, so trailing defaults are trimmed before encoding. Everything
// else a replay needs (cell seed, environment construction, private-
// mode precondition, channel class) is a pure function of (cve,
// defense, rootSeed) through the same derivation the matrix uses, so
// the token alone reproduces the identical finding byte-for-byte.

// Token identifies one discovered schedule.
type Token struct {
	CVE      vuln.CVE
	Defense  string
	RootSeed int64
	Vector   []int
}

// String encodes the token.
func (t Token) String() string {
	vec := "-"
	if len(t.Vector) > 0 {
		parts := make([]string, len(t.Vector))
		for i, v := range t.Vector {
			parts[i] = strconv.Itoa(v)
		}
		vec = strings.Join(parts, ".")
	}
	return fmt.Sprintf("v1:%s:%s:%d:%s", t.CVE, t.Defense, t.RootSeed, vec)
}

// ParseToken decodes a replay token, validating the CVE against the
// modeled corpus.
func ParseToken(s string) (Token, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 5 || parts[0] != "v1" {
		return Token{}, fmt.Errorf("explore: malformed token %q (want v1:<cve>:<defense>:<seed>:<vector>)", s)
	}
	cve := vuln.CVE(parts[1])
	known := false
	for _, c := range vuln.All() {
		if c == cve {
			known = true
			break
		}
	}
	if !known {
		return Token{}, fmt.Errorf("explore: unknown CVE %q in token", parts[1])
	}
	if parts[2] == "" {
		return Token{}, fmt.Errorf("explore: empty defense in token %q", s)
	}
	seed, err := strconv.ParseInt(parts[3], 10, 64)
	if err != nil {
		return Token{}, fmt.Errorf("explore: bad seed in token %q: %v", s, err)
	}
	t := Token{CVE: cve, Defense: parts[2], RootSeed: seed}
	if parts[4] != "-" && parts[4] != "" {
		for _, d := range strings.Split(parts[4], ".") {
			v, err := strconv.Atoi(d)
			if err != nil || v < 0 {
				return Token{}, fmt.Errorf("explore: bad choice %q in token %q", d, s)
			}
			t.Vector = append(t.Vector, v)
		}
	}
	return t, nil
}
