package explore

import "jskernel/internal/sim"

// fakeCands builds an n-way candidate list for chooser unit tests.
func fakeCands(n int) []sim.Choice {
	cands := make([]sim.Choice, n)
	for i := range cands {
		cands[i] = sim.Choice{ID: sim.EventID(i + 1), Seq: uint64(i + 1), At: 100, Name: "tie"}
	}
	return cands
}
