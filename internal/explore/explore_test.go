package explore

import (
	"encoding/json"
	"testing"

	"jskernel/internal/vuln"
)

// TestTokenRoundTrip pins the v1 token format.
func TestTokenRoundTrip(t *testing.T) {
	cases := []Token{
		{CVE: vuln.CVE20185092, Defense: "chrome", RootSeed: 42},
		{CVE: vuln.CVE20143194, Defense: "jskernel-chrome", RootSeed: -7, Vector: []int{0, 2, 1}},
	}
	for _, tok := range cases {
		got, err := ParseToken(tok.String())
		if err != nil {
			t.Fatalf("parse %q: %v", tok.String(), err)
		}
		if got.CVE != tok.CVE || got.Defense != tok.Defense || got.RootSeed != tok.RootSeed {
			t.Fatalf("round trip %q -> %+v", tok.String(), got)
		}
		if len(got.Vector) != len(tok.Vector) {
			t.Fatalf("vector round trip %q -> %v", tok.String(), got.Vector)
		}
		for i := range tok.Vector {
			if got.Vector[i] != tok.Vector[i] {
				t.Fatalf("vector round trip %q -> %v", tok.String(), got.Vector)
			}
		}
	}
}

// TestTokenRejectsMalformed covers the parse failure modes.
func TestTokenRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"v2:CVE-2018-5092:chrome:42:-",
		"v1:CVE-9999-0000:chrome:42:-",
		"v1:CVE-2018-5092::42:-",
		"v1:CVE-2018-5092:chrome:x:-",
		"v1:CVE-2018-5092:chrome:42:0.z",
		"v1:CVE-2018-5092:chrome:42:0.-3",
		"v1:CVE-2018-5092:chrome:42",
	}
	for _, s := range bad {
		if _, err := ParseToken(s); err == nil {
			t.Fatalf("ParseToken(%q) accepted malformed input", s)
		}
	}
}

// TestPCTDeterministic: the same (seed, depth, horizon) replays the same
// priority decisions.
func TestPCTDeterministic(t *testing.T) {
	mk := func() []int {
		p := NewPCT(99, 3, 16)
		var picks []int
		cands := fakeCands(4)
		for i := 0; i < 20; i++ {
			picks = append(picks, p.Choose(0, cands))
		}
		return picks
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("PCT diverged at decision %d: %v vs %v", i, a, b)
		}
	}
}

// TestPCTSeedsDiffer: different seeds explore different schedules (the
// whole point of the budget loop). With 4 candidates over 20 decisions
// a collision across all decisions is astronomically unlikely.
func TestPCTSeedsDiffer(t *testing.T) {
	run := func(seed int64) []int {
		p := NewPCT(seed, 3, 16)
		var picks []int
		cands := fakeCands(4)
		for i := 0; i < 20; i++ {
			picks = append(picks, p.Choose(0, cands))
		}
		return picks
	}
	a, b := run(1), run(2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("seeds 1 and 2 produced identical schedules %v", a)
	}
}

// TestReplayExhaustionDefaults: past the vector, replay picks index 0.
func TestReplayExhaustionDefaults(t *testing.T) {
	r := NewReplay([]int{1, 9})
	cands := fakeCands(3)
	if got := r.Choose(0, cands); got != 1 {
		t.Fatalf("decision 0 = %d, want 1", got)
	}
	if got := r.Choose(0, cands); got != 0 {
		t.Fatalf("out-of-range decision = %d, want fallback 0", got)
	}
	if got := r.Choose(0, cands); got != 0 {
		t.Fatalf("exhausted decision = %d, want 0", got)
	}
}

// TestMatrixSmoke runs the exploration end-to-end on two CVEs with a
// tiny budget: both must be discovered (chrome is the undefended
// baseline), every token must replay byte-identically, and the whole
// report must be byte-identical serial vs parallel — the determinism
// acceptance criterion at two pool widths.
func TestMatrixSmoke(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Budget = 2
	cfg.DPORBudget = 6
	cfg.CVEs = []vuln.CVE{vuln.CVE20185092, vuln.CVE20143194}
	cfg.Parallel = 1
	serial, err := Matrix(cfg)
	if err != nil {
		t.Fatalf("matrix (serial): %v", err)
	}
	if serial.Discovered != 2 {
		t.Fatalf("discovered %d/2 cells: %+v", serial.Discovered, serial.Cells)
	}
	for _, c := range serial.Cells {
		if c.Discovery == nil {
			t.Fatalf("cell %s undiscovered", c.CVE)
		}
		if !c.Discovery.ReplayIdentical {
			t.Fatalf("cell %s: replay of %s not byte-identical", c.CVE, c.Discovery.Token)
		}
		if c.Discovery.Finding.Class != c.Channel {
			t.Fatalf("cell %s: finding on class %q, want channel %q", c.CVE, c.Discovery.Finding.Class, c.Channel)
		}
	}

	cfg.Parallel = 4
	par, err := Matrix(cfg)
	if err != nil {
		t.Fatalf("matrix (parallel): %v", err)
	}
	sj, _ := json.Marshal(serial)
	pj, _ := json.Marshal(par)
	if string(sj) != string(pj) {
		t.Fatalf("report differs across pool widths:\nserial:   %s\nparallel: %s", sj, pj)
	}
}

// TestReplayRunMatchesLiveFinding: a hand-built default-order token for
// an exploited cell reproduces a channel race deterministically, twice.
func TestReplayRunMatchesLiveFinding(t *testing.T) {
	tok := Token{CVE: vuln.CVE20185092, Defense: "chrome", RootSeed: 42}
	a, err := ReplayRun(tok)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if firstOn(a, "worker") == nil {
		t.Fatalf("default schedule shows no worker race: %+v", a)
	}
	b, err := ReplayRun(tok)
	if err != nil {
		t.Fatalf("replay (again): %v", err)
	}
	if findingsJSON(a) != findingsJSON(b) {
		t.Fatalf("two replays of %s differ", tok.String())
	}
}
