// Package explore searches the schedule space of kernel environments
// for racing interleavings. PR 7's happens-before detector judges one
// deterministic interleaving per seed; this package supplies the other
// half of ROADMAP item 1: the simulator's scheduler seam (sim.Chooser)
// turns every same-virtual-time tie into a recorded choice point, so a
// schedule is a replayable vector of decisions, and two classic
// systematic-testing strategies — PCT's randomized priorities and DPOR
// with sleep sets — enumerate alternative vectors until the streaming
// hb.Detector reports a race on the CVE's channel class.
//
// The headline property is that discovery needs no oracle: every
// environment runs with the CVE registry *unarmed* (vuln.
// NewUnarmedRegistry — execution byte-identical, verdicts off), so a
// discovered race is established purely by vector-clock evidence, then
// cross-checked against expr.CVEChannel's class map. Each discovery is
// summarized by a minimal replay token (root seed + trimmed choice
// vector) that reproduces the identical finding byte-for-byte.
package explore

import (
	"encoding/json"

	"jskernel/internal/attack"
	"jskernel/internal/defense"
	"jskernel/internal/hb"
	"jskernel/internal/sim"
	"jskernel/internal/trace"
)

// wideWindow is the temporal window used by the DPOR candidate
// detector: effectively infinite, so every unordered conflicting pair —
// exploitable at this schedule or not — becomes a reversal candidate.
const wideWindow = sim.Duration(1) << 62

// runSpec describes one schedule execution.
type runSpec struct {
	Attack  *attack.CVEAttack
	Defense defense.Defense
	// EnvSeed seeds the environment (already offset like EvaluateCVE).
	EnvSeed int64
	// Inner steers tie-breaks; nil runs the default order.
	Inner sim.Chooser
	// StopClass, when non-empty, stops the simulation at the first
	// standard-window finding on this class, truncating the recorded
	// choice vector to a minimal witness prefix.
	StopClass string
	// Wide additionally attaches an infinite-window detector whose
	// findings seed DPOR's reversal candidates.
	Wide bool
}

// runOut is one schedule execution's result.
type runOut struct {
	rec *recorder
	// findings are the standard-window detector's races (sorted).
	findings []hb.Finding
	// wide are the infinite-window detector's races (sorted; nil unless
	// requested).
	wide []hb.Finding
	// err is the exploit driver's error, recorded for diagnostics only:
	// an early-stopped run surfaces sim.ErrStopped here by design.
	err error
}

// runSchedule executes one full cell under the given chooser with the
// streaming race detector attached. The recorder is attached to the
// trace session before the detectors so its record→step map already
// covers a finding's evidence when the finding (and any early stop)
// fires.
func runSchedule(spec runSpec) runOut {
	rec := newRecorder(spec.Inner)
	sess := trace.NewSession()
	sess.SetRetain(false)
	sess.Attach(rec)
	det := hb.NewDetector()
	sess.Attach(det)
	var wide *hb.Detector
	if spec.Wide {
		wide = hb.NewDetector()
		wide.SetWindow(wideWindow)
		sess.Attach(wide)
	}

	d := spec.Defense.WithTracer(sess)
	env := d.NewEnv(defense.EnvOptions{
		Seed:        spec.EnvSeed,
		Chooser:     rec,
		Unarmed:     true,
		PrivateMode: spec.Attack.RequiresPrivateMode(),
	})
	if spec.StopClass != "" {
		stop := spec.StopClass
		det.SetOnFinding(func(f hb.Finding) {
			if f.Class == stop {
				env.Sim.Stop()
			}
		})
	}
	err := spec.Attack.Exploit(env)
	sess.Close()
	out := runOut{rec: rec, findings: det.Findings(), err: err}
	if wide != nil {
		out.wide = wide.Findings()
	}
	return out
}

// firstOn returns the first finding on the class in the detector's
// deterministic order, or nil.
func firstOn(findings []hb.Finding, class string) *hb.Finding {
	for i := range findings {
		if findings[i].Class == class {
			return &findings[i]
		}
	}
	return nil
}

// findingsJSON renders a findings slice to canonical JSON for the
// byte-identical replay comparison.
func findingsJSON(fs []hb.Finding) string {
	b, err := json.Marshal(fs)
	if err != nil {
		return "marshal-error: " + err.Error()
	}
	return string(b)
}
