package explore

import (
	"fmt"

	"jskernel/internal/attack"
	"jskernel/internal/defense"
	"jskernel/internal/expr"
	"jskernel/internal/expr/runner"
	"jskernel/internal/hb"
	"jskernel/internal/sim"
	"jskernel/internal/vuln"
)

// Config scales an exploration matrix.
type Config struct {
	// Seed is the root seed; every cell and schedule seed derives from
	// it through sim.DeriveSeed, so the whole matrix is reproducible.
	Seed int64
	// Budget is the number of PCT schedules per cell beyond the
	// baseline default-order schedule.
	Budget int
	// Depth is PCT's bug-depth parameter d (d−1 change points).
	Depth int
	// Horizon is the choice-point count PCT samples change points from.
	Horizon int
	// DPORBudget bounds DPOR executions per cell for cells PCT does not
	// crack. Zero disables the DPOR phase.
	DPORBudget int
	// Parallel is the runner pool width (0 = one worker per CPU); any
	// width produces a byte-identical report.
	Parallel int
	// DefenseID selects the defense column (default "chrome" — the
	// undefended baseline where the paper's races are reachable).
	DefenseID string
	// CVEs restricts the rows; empty means the full Table I corpus.
	CVEs []vuln.CVE
}

// DefaultConfig returns the bounded budget the matrix smoke runs use.
func DefaultConfig() Config {
	return Config{
		Seed:       42,
		Budget:     6,
		Depth:      3,
		Horizon:    64,
		DPORBudget: 12,
		DefenseID:  "chrome",
	}
}

// Discovery is one rediscovered racing interleaving.
type Discovery struct {
	// Strategy is how the schedule was found: "default" (the baseline
	// interleaving already races), "pct", or "dpor".
	Strategy string `json:"strategy"`
	// Schedule is the PCT schedule index (0 = baseline); -1 for DPOR.
	Schedule int `json:"schedule"`
	// Token replays the discovery.
	Token string `json:"token"`
	// Finding is the witnessing race on the CVE's channel class.
	Finding hb.Finding `json:"finding"`
	// ReplayIdentical reports the verification pass: replaying Token
	// reproduced a byte-identical findings stream.
	ReplayIdentical bool `json:"replay_identical"`
}

// CellReport is one CVE row of the exploration report.
type CellReport struct {
	CVE     string `json:"cve"`
	Channel string `json:"channel"`
	// Schedules counts schedule executions spent on this cell
	// (baseline + PCT, plus DPOR when it ran).
	Schedules int `json:"schedules"`
	// Discovery is nil when the budget exhausted without a channel race.
	Discovery *Discovery `json:"discovery,omitempty"`
}

// Report is the full exploration matrix result.
type Report struct {
	Seed       int64        `json:"seed"`
	Defense    string       `json:"defense"`
	Budget     int          `json:"budget"`
	Depth      int          `json:"depth"`
	DPORBudget int          `json:"dpor_budget"`
	Cells      []CellReport `json:"cells"`
	Discovered int          `json:"discovered"`
}

// defenseByID resolves a Table I defense column.
func defenseByID(id string) (defense.Defense, error) {
	for _, d := range defense.TableIDefenses() {
		if d.ID == id {
			return d, nil
		}
	}
	return defense.Defense{}, fmt.Errorf("explore: unknown defense %q (want a Table I column)", id)
}

// cellSeeds derives the per-cell seed stream. The cell index is the
// CVE's position in the full corpus (not the filtered subset) so a
// -cves restriction explores exactly the schedules the full matrix
// would.
func cellSeed(rootSeed int64, cve vuln.CVE, defIdx int) int64 {
	nDef := len(defense.TableIDefenses())
	row := 0
	for i, c := range vuln.All() {
		if c == cve {
			row = i
			break
		}
	}
	return sim.DeriveSeed(rootSeed, int64(row*nDef+defIdx))
}

// attackFor returns the exploit driver for a CVE.
func attackFor(cve vuln.CVE) (*attack.CVEAttack, error) {
	for _, a := range attack.CVEAttacks() {
		if a.CVE == cve {
			return a, nil
		}
	}
	return nil, fmt.Errorf("explore: no exploit driver for %q", cve)
}

// schedOut is one (cell, schedule) execution's distilled result.
type schedOut struct {
	found  *hb.Finding
	vector []int
}

// Matrix runs the exploration: for every selected CVE, the baseline
// schedule plus Budget PCT schedules run in parallel across the runner
// pool (unarmed registries, streaming detector, early stop at the first
// channel-class race); cells PCT leaves undiscovered get a DPOR pass.
// Every discovery is then re-executed serially from its replay token
// and the byte-identical comparison recorded. Results are collected in
// index order, so the report is identical at any Parallel width.
func Matrix(cfg Config) (*Report, error) {
	if cfg.DefenseID == "" {
		cfg.DefenseID = "chrome"
	}
	if cfg.Depth < 1 {
		cfg.Depth = 3
	}
	if cfg.Horizon < 1 {
		cfg.Horizon = 64
	}
	def, err := defenseByID(cfg.DefenseID)
	if err != nil {
		return nil, err
	}
	defIdx := 0
	for i, d := range defense.TableIDefenses() {
		if d.ID == cfg.DefenseID {
			defIdx = i
			break
		}
	}
	cves := cfg.CVEs
	if len(cves) == 0 {
		cves = vuln.All()
	}
	rows := make([]*attack.CVEAttack, len(cves))
	channels := make([]string, len(cves))
	for i, c := range cves {
		a, err := attackFor(c)
		if err != nil {
			return nil, err
		}
		ch, ok := expr.CVEChannel(c)
		if !ok {
			return nil, fmt.Errorf("explore: no channel class for %q", c)
		}
		rows[i] = a
		channels[i] = ch
	}

	// Phase 1: baseline + PCT, flattened over (cell, schedule) so the
	// pool stays saturated; schedule 0 is the default order.
	nSched := 1 + cfg.Budget
	flat := runner.Map(cfg.Parallel, len(cves)*nSched, func(i int) schedOut {
		cell, s := i/nSched, i%nSched
		base := cellSeed(cfg.Seed, cves[cell], defIdx)
		var inner sim.Chooser
		if s > 0 {
			inner = NewPCT(sim.DeriveSeed(base, int64(s)), cfg.Depth, cfg.Horizon)
		}
		res := runSchedule(runSpec{
			Attack:    rows[cell],
			Defense:   def,
			EnvSeed:   base + 1,
			Inner:     inner,
			StopClass: channels[cell],
		})
		out := schedOut{}
		if f := firstOn(res.findings, channels[cell]); f != nil {
			ff := *f
			out.found = &ff
			out.vector = res.rec.trimmed()
		}
		return out
	})

	rep := &Report{
		Seed:       cfg.Seed,
		Defense:    cfg.DefenseID,
		Budget:     cfg.Budget,
		Depth:      cfg.Depth,
		DPORBudget: cfg.DPORBudget,
	}

	// Pick each cell's lowest discovering schedule index — the same
	// winner a serial sweep would find first.
	type pending struct{ cell int }
	var undiscovered []pending
	cells := make([]CellReport, len(cves))
	for cell := range cves {
		cr := CellReport{CVE: string(cves[cell]), Channel: channels[cell], Schedules: nSched}
		for s := 0; s < nSched; s++ {
			out := flat[cell*nSched+s]
			if out.found == nil {
				continue
			}
			strategy := "pct"
			if s == 0 {
				strategy = "default"
			}
			cr.Discovery = &Discovery{
				Strategy: strategy,
				Schedule: s,
				Token: Token{
					CVE: cves[cell], Defense: cfg.DefenseID,
					RootSeed: cfg.Seed, Vector: out.vector,
				}.String(),
				Finding: *out.found,
			}
			break
		}
		if cr.Discovery == nil && cfg.DPORBudget > 0 {
			undiscovered = append(undiscovered, pending{cell: cell})
		}
		cells[cell] = cr
	}

	// Phase 2: DPOR on the cells PCT left undiscovered. Each search is
	// serial inside (the frontier is sequential by nature) but cells
	// run across the pool; no nested goroutines.
	if len(undiscovered) > 0 {
		dporOuts := runner.Map(cfg.Parallel, len(undiscovered), func(i int) dporOut {
			cell := undiscovered[i].cell
			base := cellSeed(cfg.Seed, cves[cell], defIdx)
			return dporSearch(runSpec{
				Attack:  rows[cell],
				Defense: def,
				EnvSeed: base + 1,
			}, channels[cell], cfg.DPORBudget)
		})
		for i, out := range dporOuts {
			cell := undiscovered[i].cell
			cells[cell].Schedules += out.executions
			if out.found != nil {
				cells[cell].Discovery = &Discovery{
					Strategy: "dpor",
					Schedule: -1,
					Token: Token{
						CVE: cves[cell], Defense: cfg.DefenseID,
						RootSeed: cfg.Seed, Vector: out.vector,
					}.String(),
					Finding: *out.found,
				}
			}
		}
	}

	// Phase 3: verification. Replay every discovery's token twice —
	// once here, once against the live finding — and record whether the
	// findings stream came back byte-identical.
	for i := range cells {
		d := cells[i].Discovery
		if d == nil {
			continue
		}
		tok, err := ParseToken(d.Token)
		if err != nil {
			return nil, fmt.Errorf("explore: self-emitted token failed to parse: %v", err)
		}
		replayed, err := ReplayRun(tok)
		if err != nil {
			return nil, err
		}
		live := findingsJSON([]hb.Finding{d.Finding})
		got := "null"
		if f := firstOn(replayed, cells[i].Channel); f != nil {
			got = findingsJSON([]hb.Finding{*f})
		}
		d.ReplayIdentical = live == got
		rep.Discovered++
	}
	rep.Cells = cells
	return rep, nil
}

// ReplayRun executes a replay token and returns the standard-window
// findings of the reproduced schedule, truncated at the same early-stop
// point as the live run.
func ReplayRun(t Token) ([]hb.Finding, error) {
	def, err := defenseByID(t.Defense)
	if err != nil {
		return nil, err
	}
	defIdx := 0
	for i, d := range defense.TableIDefenses() {
		if d.ID == t.Defense {
			defIdx = i
			break
		}
	}
	a, err := attackFor(t.CVE)
	if err != nil {
		return nil, err
	}
	ch, ok := expr.CVEChannel(t.CVE)
	if !ok {
		return nil, fmt.Errorf("explore: no channel class for %q", t.CVE)
	}
	base := cellSeed(t.RootSeed, t.CVE, defIdx)
	res := runSchedule(runSpec{
		Attack:    a,
		Defense:   def,
		EnvSeed:   base + 1,
		Inner:     NewReplay(t.Vector),
		StopClass: ch,
	})
	return res.findings, nil
}
