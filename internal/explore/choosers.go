package explore

import (
	"math/rand"

	"jskernel/internal/sim"
	"jskernel/internal/trace"
)

// point is one recorded choice point: the dispatch step it resolved,
// the candidate event seqs offered (in default order), and the index
// chosen.
type point struct {
	step   uint64
	cands  []uint64
	chosen int
}

// recorder wraps an inner chooser and records everything exploration
// needs to branch and replay: the choice vector, the per-point
// candidate sets, the step → event-seq dispatch log, and the trace
// access-record → step map (via its trace.Sink facet — attach it to the
// session *before* the detector so the map already covers a finding's
// evidence when the finding fires). A nil inner chooser reproduces the
// simulator's default lowest-seq order.
type recorder struct {
	inner   sim.Chooser
	vector  []int
	points  []point
	curStep uint64
	seqAt   map[uint64]uint64 // dispatch step -> event seq
	stepOf  map[uint64]uint64 // OpAccess record Seq -> dispatch step
}

func newRecorder(inner sim.Chooser) *recorder {
	return &recorder{
		inner:  inner,
		seqAt:  make(map[uint64]uint64),
		stepOf: make(map[uint64]uint64),
	}
}

func (r *recorder) Choose(now sim.Time, cands []sim.Choice) int {
	idx := 0
	if r.inner != nil {
		idx = r.inner.Choose(now, cands)
		if idx < 0 || idx >= len(cands) {
			idx = 0
		}
	}
	seqs := make([]uint64, len(cands))
	for i, c := range cands {
		seqs[i] = c.Seq
	}
	// The chosen candidate dispatches as the step after the current one.
	r.points = append(r.points, point{step: r.curStep + 1, cands: seqs, chosen: idx})
	r.vector = append(r.vector, idx)
	return idx
}

func (r *recorder) Dispatched(step uint64, c sim.Choice) {
	r.curStep = step
	r.seqAt[step] = c.Seq
}

func (r *recorder) Observe(rec trace.Record) {
	if rec.Op == trace.OpAccess {
		r.stepOf[rec.Seq] = r.curStep
	}
}

// trimmed returns the choice vector with trailing zeros removed: replay
// defaults to index 0 past the vector's end, so trailing defaults carry
// no information. This is what makes replay tokens minimal.
func (r *recorder) trimmed() []int {
	v := r.vector
	for len(v) > 0 && v[len(v)-1] == 0 {
		v = v[:len(v)-1]
	}
	out := make([]int, len(v))
	copy(out, v)
	return out
}

// Replay is a Chooser that plays back a recorded choice vector: one
// decision per choice point, in order, defaulting to index 0 (the
// simulator's default order) once the vector is exhausted or when a
// decision is out of range for the offered candidates.
type Replay struct {
	vector []int
	pos    int
}

// NewReplay returns a replay chooser for the given choice vector.
func NewReplay(vector []int) *Replay {
	return &Replay{vector: vector}
}

func (r *Replay) Choose(_ sim.Time, cands []sim.Choice) int {
	if r.pos >= len(r.vector) {
		return 0
	}
	idx := r.vector[r.pos]
	r.pos++
	if idx < 0 || idx >= len(cands) {
		return 0
	}
	return idx
}

// PCT priority bands: fresh events draw random priorities from the high
// band; change points demote into the strictly lower band, so a demoted
// event only runs when nothing high-band is ready — the classic PCT
// structure (Burckhardt et al., ASPLOS 2010).
const (
	pctLowBandStart  = uint64(1) << 20
	pctHighBandFloor = uint64(1) << 21
	pctHighBandSpan  = int64(1) << 40
)

// PCT is the probabilistic concurrency testing chooser: each event gets
// a seeded random priority on first sight, the highest-priority ready
// candidate runs, and at d−1 pre-sampled change points the current
// winner is demoted below everything seen so far. For a program with at
// most n schedulable events and k choice points, a depth-d bug is
// detected with probability ≥ 1/(n·k^(d−1)) per schedule.
type PCT struct {
	rng     *rand.Rand
	prio    map[uint64]uint64 // event seq -> priority
	change  map[int]bool      // choice-point index -> demote here
	nextLow uint64
	point   int
}

// NewPCT returns a PCT chooser. depth is the bug-depth parameter d
// (d−1 change points); horizon is the choice-point count the change
// points are sampled from — points past the horizon never demote.
// Everything is a pure function of seed, so a PCT schedule is
// reproducible without recording anything (exploration records the
// resulting choice vector anyway, for seedless replay tokens).
func NewPCT(seed int64, depth, horizon int) *PCT {
	rng := rand.New(rand.NewSource(seed))
	if horizon < 1 {
		horizon = 1
	}
	change := make(map[int]bool, depth)
	for i := 0; i < depth-1; i++ {
		change[rng.Intn(horizon)] = true
	}
	return &PCT{
		rng:     rng,
		prio:    make(map[uint64]uint64),
		change:  change,
		nextLow: pctLowBandStart,
	}
}

func (p *PCT) Choose(_ sim.Time, cands []sim.Choice) int {
	for _, c := range cands {
		if _, ok := p.prio[c.Seq]; !ok {
			p.prio[c.Seq] = pctHighBandFloor + uint64(p.rng.Int63n(pctHighBandSpan))
		}
	}
	best := p.argmax(cands)
	if p.change[p.point] {
		p.prio[cands[best].Seq] = p.nextLow
		p.nextLow--
		best = p.argmax(cands)
	}
	p.point++
	return best
}

// argmax returns the index of the highest-priority candidate, lowest
// index winning ties — fully deterministic.
func (p *PCT) argmax(cands []sim.Choice) int {
	best := 0
	for i := 1; i < len(cands); i++ {
		if p.prio[cands[i].Seq] > p.prio[cands[best].Seq] {
			best = i
		}
	}
	return best
}
