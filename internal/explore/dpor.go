package explore

import (
	"fmt"

	"jskernel/internal/hb"
)

// Dynamic partial-order reduction over the choice-vector space, with
// sleep sets. Each executed schedule is mined for racing transition
// pairs: the infinite-window detector reports every unordered
// conflicting access pair, and the recorder maps each pair's evidence
// records back to dispatch steps. For a pair (s1 < s2), the state just
// before s1 is where the race could resolve the other way, so DPOR
// branches at the choice point that dispatched s1:
//
//   - if the event dispatched at s2 was among that point's candidates,
//     the single reversal picking it is enqueued (a genuine race
//     reversal — the racing transition was enabled there);
//   - otherwise the racing event was not yet schedulable at s1 and the
//     classic fallback enqueues every alternative at the point.
//
// Sleep sets carry the exploration's memory down each branch: when a
// child is enqueued, the decision its parent actually took at the
// branch point joins the child's sleep set, so re-reversing the same
// pair from the other side — which would re-explore a Mazurkiewicz-
// equivalent interleaving — is pruned. A visited set over whole
// prefixes catches the remaining collisions. The frontier is FIFO and
// every source of candidates is deterministically ordered (findings
// sorted, candidates in seq order), so a DPOR search is a pure
// function of (seed, budget).

// dporNode is one frontier entry: a prefix to replay plus the sleep set
// accumulated on the path to it.
type dporNode struct {
	prefix []int
	sleep  map[string]bool
}

// dporOut summarizes one CVE's DPOR search.
type dporOut struct {
	// found is the first standard-window channel finding, nil if the
	// budget exhausted without one.
	found *hb.Finding
	// vector is the discovering schedule's trimmed choice vector.
	vector []int
	// executions counts schedules actually run.
	executions int
}

// sleepKey names one (choice point, candidate event) decision.
func sleepKey(pointIdx int, candSeq uint64) string {
	return fmt.Sprintf("%d:%d", pointIdx, candSeq)
}

// prefixKey canonicalizes a prefix for the visited set.
func prefixKey(prefix []int) string { return fmt.Sprint(prefix) }

// dporSearch explores reversals of racing transition pairs for one
// cell, starting from the default schedule, until a standard-window
// race on channel is found or budget executions are spent.
func dporSearch(spec runSpec, channel string, budget int) dporOut {
	out := dporOut{}
	frontier := []dporNode{{prefix: nil, sleep: map[string]bool{}}}
	visited := map[string]bool{}
	for budget > out.executions && len(frontier) > 0 {
		node := frontier[0]
		frontier = frontier[1:]
		pk := prefixKey(node.prefix)
		if visited[pk] {
			continue
		}
		visited[pk] = true

		spec.Inner = NewReplay(node.prefix)
		spec.StopClass = channel
		spec.Wide = true
		res := runSchedule(spec)
		out.executions++

		if f := firstOn(res.findings, channel); f != nil {
			ff := *f
			out.found = &ff
			out.vector = res.rec.trimmed()
			return out
		}
		frontier = append(frontier, dporExpand(node, res)...)
	}
	return out
}

// dporExpand mines one executed schedule for reversal candidates.
func dporExpand(node dporNode, res runOut) []dporNode {
	var children []dporNode
	for _, f := range res.wide {
		if len(f.Evidence) != 2 {
			continue
		}
		s1, ok1 := res.rec.stepOf[f.Evidence[0]]
		s2, ok2 := res.rec.stepOf[f.Evidence[1]]
		if !ok1 || !ok2 || s1 == s2 {
			continue
		}
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		// The choice point that dispatched the pair's first access; a
		// forced step offers no freedom to reverse.
		pi := -1
		for i := range res.rec.points {
			if res.rec.points[i].step == s1 {
				pi = i
				break
			}
		}
		if pi < 0 {
			continue
		}
		p := res.rec.points[pi]
		target := res.rec.seqAt[s2]
		var alts []int
		targetIdx := -1
		for j, seq := range p.cands {
			if seq == target {
				targetIdx = j
				break
			}
		}
		if targetIdx >= 0 {
			if targetIdx != p.chosen {
				alts = []int{targetIdx}
			}
		} else {
			for j := range p.cands {
				if j != p.chosen {
					alts = append(alts, j)
				}
			}
		}
		for _, j := range alts {
			if node.sleep[sleepKey(pi, p.cands[j])] {
				continue
			}
			child := make([]int, pi+1)
			copy(child, res.rec.vector[:pi])
			child[pi] = j
			sleep := make(map[string]bool, len(node.sleep)+1)
			for k := range node.sleep {
				sleep[k] = true
			}
			sleep[sleepKey(pi, p.cands[p.chosen])] = true
			children = append(children, dporNode{prefix: child, sleep: sleep})
		}
	}
	return children
}
