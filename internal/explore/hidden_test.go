package explore

import (
	"testing"

	"jskernel/internal/attack"
	"jskernel/internal/defense"
	"jskernel/internal/hb"
	"jskernel/internal/sim"
	"jskernel/internal/trace"
	"jskernel/internal/vuln"
)

// hiddenRaceAttack builds a synthetic cell whose race is invisible in
// the default schedule and manifests only when the tie is reversed:
// two same-virtual-time events, scheduled main-first. The main write
// commits at its dispatch time; the worker write models a long task,
// committing 1ms later. In default order the record stream is
// (t1@1ms, t2@2ms) — unordered but 1ms apart, outside hb.Window, so no
// finding. Reversed, the stream is (t2@2ms, t1@1ms): a later record
// with an earlier commit time means the tasks genuinely overlapped
// (the signed-window rule), and the detector fires. Discovering it
// therefore requires actually steering the scheduler — exactly what
// PCT and DPOR are for.
func hiddenRaceAttack() *attack.CVEAttack {
	return &attack.CVEAttack{
		CVE:   vuln.CVE20143194,
		Label: "synthetic hidden buffer race",
		Exploit: func(env *defense.Env) error {
			s := env.Sim
			tr := env.Trace
			s.Schedule(1*sim.Millisecond, "main-write", func() {
				tr.Emit(trace.Record{Run: 1, VT: s.Now(), Thread: 1,
					Op: trace.OpAccess, API: "buffer", Value: 7, Action: "w"})
			})
			s.Schedule(1*sim.Millisecond, "worker-write", func() {
				tr.Emit(trace.Record{Run: 1, VT: s.Now() + sim.Millisecond, Thread: 2,
					Op: trace.OpAccess, API: "buffer", Value: 7, Action: "w"})
			})
			return s.Run()
		},
	}
}

func hiddenSpec(t *testing.T) runSpec {
	t.Helper()
	def, err := defenseByID("chrome")
	if err != nil {
		t.Fatalf("defense: %v", err)
	}
	return runSpec{Attack: hiddenRaceAttack(), Defense: def, EnvSeed: 1}
}

// TestHiddenRaceInvisibleByDefault pins the fixture's premise: the
// default schedule must NOT show the race (otherwise the strategy tests
// below prove nothing).
func TestHiddenRaceInvisibleByDefault(t *testing.T) {
	spec := hiddenSpec(t)
	spec.Wide = true
	res := runSchedule(spec)
	if f := firstOn(res.findings, "buffer"); f != nil {
		t.Fatalf("default schedule already shows the race: %+v", *f)
	}
	// ...but the wide-window detector must see the unordered pair, or
	// DPOR has no reversal candidate.
	if f := firstOn(res.wide, "buffer"); f == nil {
		t.Fatalf("wide-window detector missed the unordered pair; wide findings: %+v", res.wide)
	}
}

// TestDPORDiscoversHiddenRace: DPOR mines the default run's unordered
// pair, reverses the tie, and finds the race — within a tiny budget,
// deterministically.
func TestDPORDiscoversHiddenRace(t *testing.T) {
	out := dporSearch(hiddenSpec(t), "buffer", 8)
	if out.found == nil {
		t.Fatalf("DPOR exhausted %d executions without finding the race", out.executions)
	}
	if out.executions > 2 {
		t.Fatalf("DPOR needed %d executions, want the direct reversal on the 2nd", out.executions)
	}
	if out.found.Class != "buffer" {
		t.Fatalf("found class %q, want buffer", out.found.Class)
	}
	// The discovering vector, replayed, reproduces the identical race.
	spec := hiddenSpec(t)
	spec.Inner = NewReplay(out.vector)
	spec.StopClass = "buffer"
	res := runSchedule(spec)
	f := firstOn(res.findings, "buffer")
	if f == nil {
		t.Fatalf("replay of discovering vector %v shows no race", out.vector)
	}
	if findingsJSON([]hb.Finding{*f}) != findingsJSON([]hb.Finding{*out.found}) {
		t.Fatalf("replayed finding differs from live discovery:\nlive:   %+v\nreplay: %+v", *out.found, *f)
	}
}

// TestPCTDiscoversHiddenRace: some PCT seed within a small budget picks
// the worker-first order at the tie. Deterministic: once a seed works,
// it always works.
func TestPCTDiscoversHiddenRace(t *testing.T) {
	spec := hiddenSpec(t)
	found := -1
	for s := 1; s <= 8; s++ {
		spec.Inner = NewPCT(sim.DeriveSeed(1, int64(s)), 3, 16)
		spec.StopClass = "buffer"
		res := runSchedule(spec)
		if firstOn(res.findings, "buffer") != nil {
			found = s
			break
		}
	}
	if found < 0 {
		t.Fatal("no PCT schedule in budget 8 reversed the tie")
	}
}
