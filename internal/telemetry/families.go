package telemetry

// Exposition assembly for the plane-owned aggregates. The serve layer
// appends its own service families (admissions, sheds, breaker state,
// pool occupancy) and calls WriteExposition; everything kernel- or
// plane-shaped is rendered here so the metric names stay in one place.

// Families renders the kernel aggregate.
func (a *KernelAggregate) Families() []Family {
	fams := []Family{
		Counter("jsk_kernel_requests", "Evaluations whose kernel metrics were folded into this aggregate.", a.Requests),
		Counter("jsk_kernel_installs", "Event-handler installs observed by the kernel.", a.Installs),
		Counter("jsk_kernel_enqueued", "Events enqueued by the kernel.", a.Enqueued),
		Counter("jsk_kernel_confirmed", "Events confirmed by policy.", a.Confirmed),
		Counter("jsk_kernel_dispatched", "Events dispatched to handlers.", a.Dispatched),
		Counter("jsk_kernel_shed", "Events shed by overload or policy.", a.Shed),
		Counter("jsk_kernel_cancelled", "Events cancelled before dispatch.", a.Cancelled),
		Counter("jsk_kernel_expired", "Events expired before dispatch.", a.Expired),
		Counter("jsk_kernel_panics", "Handler panics absorbed by the kernel.", a.Panics),
		Counter("jsk_kernel_quarantines", "Scopes quarantined after repeated faults.", a.Quarantines),
		Counter("jsk_kernel_native", "Native-bridge transitions observed.", a.Native),
		Counter("jsk_kernel_policy_decisions", "Policy decisions taken.", a.PolicyDecisions),
		Counter("jsk_kernel_interpose_crossings", "Kernel-boundary interposition crossings.", a.InterposeCrossings),
		Gauge("jsk_kernel_interpose_virtual_seconds",
			"Virtual time charged to interposition, in seconds.",
			float64(a.InterposeVirtualNs)/1e9),
		LabeledCounter("jsk_kernel_api_enqueues", "Events enqueued per web API kind.", "api", a.APIEnqueues),
		Gauge("jsk_kernel_queue_high_water", "Highest per-scope queue depth observed across requests.", float64(a.QueueHighWater)),
		HistogramFamily("jsk_kernel_dispatch_latency_seconds",
			"Virtual time between event enqueue and dispatch, in virtual seconds.",
			&a.DispatchLatency),
	}
	return fams
}

// Families renders the plane's own health: flusher batching counters,
// hub publish/eviction counters, and ledger totals.
func (p *Plane) Families() []Family {
	batches, items, syncApplied, syncFallbacks := p.FlushStats()
	published, evicted := p.Hub.Counts()
	fams := []Family{
		Counter("jsk_telemetry_flush_batches", "Flusher batches applied.", batches),
		Counter("jsk_telemetry_flush_items", "Telemetry items applied (batched or inline).", items),
		Counter("jsk_telemetry_inline_applies", "Items applied inline (sync mode or closed plane).", syncApplied),
		Counter("jsk_telemetry_inline_fallbacks", "Items applied inline because the flusher queue was full.", syncFallbacks),
		LabeledCounter("jsk_events_published", "Events published to the hub per type.", "type", published),
		Counter("jsk_events_evicted", "Events evicted from the hub replay ring.", evicted),
		Counter("jsk_ledger_observed_requests", "Requests folded into the forensics ledger.", p.Ledger.observedCount()),
		Counter("jsk_ledger_campaigns", "Campaign findings raised by the forensics ledger.", p.Ledger.Campaigns()),
	}
	return fams
}

func (l *Ledger) observedCount() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.observed
}
