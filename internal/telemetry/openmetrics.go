// Package telemetry is the service's live observability plane: an
// OpenMetrics text exposition with its own self-check parser, a
// bounded batching flusher that amortizes per-request telemetry work,
// a resumable server-sent-event hub for streaming forensics, and a
// cross-request forensics ledger that accumulates per-request
// signature fragments with decay to catch slow multi-request probe
// campaigns no single-request detector can see.
//
// The determinism boundary runs through this package the same way it
// runs through internal/serve: everything here lives in the wall-clock
// service world (it is on jsk-lint's detwalltime allowlist for exactly
// that reason), and nothing it computes may flow back into an
// evaluation or into /v1/eval response bytes. The one deliberate
// exception to "wall-clock world" is the Ledger, whose verdicts must
// be reproducible: it decays per observed request, never per second,
// so a fixed request sequence always yields the same campaign
// findings.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"jskernel/internal/sim"
	"jskernel/internal/trace"
)

// Metric family types of the exposition dialect this package emits and
// parses: the OpenMetrics subset the service actually needs.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// ContentType is the HTTP Content-Type of the exposition.
const ContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// Label is one name="value" pair on a sample.
type Label struct {
	Name  string
	Value string
}

// Sample is one exposition line: an optional suffix on the family name
// (counters append _total, histogram series _bucket/_count/_sum),
// labels, and a value.
type Sample struct {
	Suffix string
	Labels []Label
	Value  float64
}

// Family is one metric family: name, type, help, and its samples in
// emission order. Writers are responsible for emitting samples in a
// deterministic order; the parser verifies structure, not order.
type Family struct {
	Name    string
	Type    string
	Help    string
	Samples []Sample
}

// Counter builds a single-sample counter family (sample name_total).
func Counter(name, help string, v uint64) Family {
	return Family{Name: name, Type: TypeCounter, Help: help,
		Samples: []Sample{{Suffix: "_total", Value: float64(v)}}}
}

// Gauge builds a single-sample gauge family.
func Gauge(name, help string, v float64) Family {
	return Family{Name: name, Type: TypeGauge, Help: help,
		Samples: []Sample{{Value: v}}}
}

// LabeledCounter builds a counter family with one sample per (label
// value, count) pair, sorted by label value for determinism.
func LabeledCounter(name, help, label string, counts map[string]uint64) Family {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	f := Family{Name: name, Type: TypeCounter, Help: help}
	for _, k := range keys {
		f.Samples = append(f.Samples, Sample{
			Suffix: "_total",
			Labels: []Label{{Name: label, Value: k}},
			Value:  float64(counts[k]),
		})
	}
	return f
}

// HistogramFamily renders a trace.Histogram (power-of-two buckets over
// virtual or wall nanoseconds) as a cumulative OpenMetrics histogram in
// seconds. Only occupied buckets get their own le edge; the +Inf bucket
// always carries the total, and _count/_sum close the family.
func HistogramFamily(name, help string, h *trace.Histogram, extraLabels ...Label) Family {
	f := Family{Name: name, Type: TypeHistogram, Help: help}
	var cum uint64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		cum += c
		// Upper edge of bucket i is 2^(i+1) ns.
		le := float64(uint64(1)<<uint(i+1)) / 1e9
		f.Samples = append(f.Samples, Sample{
			Suffix: "_bucket",
			Labels: append(append([]Label{}, extraLabels...), Label{Name: "le", Value: formatFloat(le)}),
			Value:  float64(cum),
		})
	}
	f.Samples = append(f.Samples,
		Sample{Suffix: "_bucket", Labels: append(append([]Label{}, extraLabels...), Label{Name: "le", Value: "+Inf"}), Value: float64(h.Total)},
		Sample{Suffix: "_count", Labels: append([]Label{}, extraLabels...), Value: float64(h.Total)},
		Sample{Suffix: "_sum", Labels: append([]Label{}, extraLabels...), Value: float64(h.Sum) / 1e9},
	)
	return f
}

// SecondsOf converts a virtual or wall duration in nanoseconds to the
// float seconds the exposition carries.
func SecondsOf(d sim.Duration) float64 { return float64(d) / 1e9 }

// formatFloat renders a value the shortest way that round-trips.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// escapeLabelValue applies the exposition's label-value escaping.
func escapeLabelValue(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// WriteExposition renders the families as OpenMetrics text, closing
// with the mandatory "# EOF". Families render in the order given;
// within a family, samples render in the order given — builders above
// keep both deterministic.
func WriteExposition(w io.Writer, families []Family) error {
	for _, f := range families {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, f.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Type); err != nil {
			return err
		}
		for _, s := range f.Samples {
			var b strings.Builder
			b.WriteString(f.Name)
			b.WriteString(s.Suffix)
			if len(s.Labels) > 0 {
				b.WriteByte('{')
				for i, l := range s.Labels {
					if i > 0 {
						b.WriteByte(',')
					}
					b.WriteString(l.Name)
					b.WriteString(`="`)
					b.WriteString(escapeLabelValue(l.Value))
					b.WriteByte('"')
				}
				b.WriteByte('}')
			}
			b.WriteByte(' ')
			b.WriteString(formatFloat(s.Value))
			b.WriteByte('\n')
			if _, err := io.WriteString(w, b.String()); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}
