package telemetry

import (
	"context"
	"encoding/json"
	"sync"
	"time"
)

// Event is one streamed observability finding: a span, a per-request
// forensics verdict, a ledger campaign flag, or a gap marker. IDs are
// assigned by the hub in publish order, start at 1, and never repeat,
// which is what makes Last-Event-ID resume and client-side dedup exact.
type Event struct {
	ID   uint64          `json:"id"`
	Type string          `json:"type"`
	Data json.RawMessage `json:"data"`
}

// Event types published by the plane.
const (
	EventSpan      = "span"      // per-request service span + kernel trace link
	EventForensics = "forensics" // per-request streaming forensic verdict
	EventCampaign  = "campaign"  // cross-request ledger campaign finding
	EventGap       = "gap"       // ring overrun: events [From, To] were evicted
)

// GapData is the payload of an EventGap: the evicted ID range. A gap is
// the hub's refusal to drop silently — a consumer that fell behind the
// ring learns exactly which events it lost.
type GapData struct {
	From uint64 `json:"from"`
	To   uint64 `json:"to"`
}

// Hub buffers published events in a bounded ring and wakes blocked
// subscribers. Subscribers poll with Since (resumable by event ID) and
// park in Wait between polls; the hub holds no per-subscriber queues,
// so one slow consumer can never apply backpressure to publishers or
// to eval workers — it simply falls behind the ring and receives an
// explicit gap event when it resumes.
type Hub struct {
	mu      sync.Mutex
	ring    []Event // last ringCap events, oldest first
	ringCap int
	next    uint64        // next event ID to assign
	notify  chan struct{} // closed on publish, then replaced
	closed  bool

	published map[string]uint64 // per-type publish counters
	evicted   uint64            // events pushed out of the ring
}

// NewHub builds a hub retaining the last ringCap events (default 1024).
func NewHub(ringCap int) *Hub {
	if ringCap <= 0 {
		ringCap = 1024
	}
	return &Hub{
		ringCap:   ringCap,
		next:      1,
		notify:    make(chan struct{}),
		published: make(map[string]uint64),
	}
}

// Publish appends one event, assigning its ID. Payloads that fail to
// encode are dropped with a count under type "encode-error" — the only
// event loss the hub tolerates, and it is counted, never silent.
// Publishing to a closed hub is a counted no-op.
func (h *Hub) Publish(eventType string, payload any) uint64 {
	data, err := json.Marshal(payload)
	if err != nil {
		h.mu.Lock()
		h.published["encode-error"]++
		h.mu.Unlock()
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		h.published["after-close"]++
		return 0
	}
	ev := Event{ID: h.next, Type: eventType, Data: data}
	h.next++
	h.published[eventType]++
	if len(h.ring) == h.ringCap {
		copy(h.ring, h.ring[1:])
		h.ring[len(h.ring)-1] = ev
		h.evicted++
	} else {
		h.ring = append(h.ring, ev)
	}
	close(h.notify)
	h.notify = make(chan struct{})
	return ev.ID
}

// Since returns up to max events with ID > after, plus a gap describing
// any events already evicted from the ring past the caller's cursor.
// A nil gap means the resume is exact.
func (h *Hub) Since(after uint64, max int) ([]Event, *GapData) {
	h.mu.Lock()
	defer h.mu.Unlock()
	var gap *GapData
	if len(h.ring) > 0 && h.ring[0].ID > after+1 {
		gap = &GapData{From: after + 1, To: h.ring[0].ID - 1}
	} else if len(h.ring) == 0 && h.next > after+1 {
		gap = &GapData{From: after + 1, To: h.next - 1}
	}
	var out []Event
	for _, ev := range h.ring {
		if ev.ID <= after {
			continue
		}
		out = append(out, ev)
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out, gap
}

// Wait blocks until a publish after the call, the context ends, the
// hub closes, or maxWait elapses. It returns true when the caller
// should poll again (publish or timeout) and false when the stream is
// over (context done or hub closed).
func (h *Hub) Wait(ctx context.Context, maxWait time.Duration) bool {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return false
	}
	notify := h.notify
	h.mu.Unlock()
	timer := time.NewTimer(maxWait)
	defer timer.Stop()
	//jsk:lint-ignore detselect wall-clock service boundary: a subscriber parks on OS events (publish wakeup, client disconnect, keepalive tick) with no deterministic order to preserve
	select {
	case <-notify:
		return true
	case <-ctx.Done():
		return false
	case <-timer.C:
		return true
	}
}

// LastID reports the most recently assigned event ID (0 when none).
func (h *Hub) LastID() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.next - 1
}

// Counts snapshots the per-type publish counters and the eviction
// count for the exposition.
func (h *Hub) Counts() (published map[string]uint64, evicted uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]uint64, len(h.published))
	for k, v := range h.published {
		out[k] = v
	}
	return out, h.evicted
}

// Close ends the stream: blocked subscribers wake and see a closed
// hub; later publishes are counted no-ops. Idempotent.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	close(h.notify)
}

// Closed reports whether Close has run.
func (h *Hub) Closed() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.closed
}
