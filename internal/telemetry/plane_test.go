package telemetry

import (
	"strings"
	"testing"

	"jskernel/internal/trace"
)

func metricsFixture(t *testing.T) *trace.Metrics {
	t.Helper()
	sess := trace.NewSession()
	m := sess.Metrics()
	m.Installs = 2
	m.Enqueued = 5
	m.Dispatched = 4
	m.DispatchLatency.Observe(100)
	m.DispatchLatency.Observe(3000)
	sess.Close()
	return m
}

func TestPlaneFoldsAndPublishes(t *testing.T) {
	p := NewPlane(PlaneConfig{})
	defer p.Close()
	m := metricsFixture(t)
	p.SubmitEval(&EvalRecord{
		RequestID: "req-1",
		Tenant:    "t1",
		Scope:     "loopscan",
		Metrics:   m,
		Forensics: map[string]bool{"flagged": false},
	})
	p.SubmitSpan(&Span{RequestID: "req-1", Attack: "loopscan", Defense: "none", EvalNs: 5})
	p.Barrier()

	agg := p.KernelSnapshot()
	if agg.Requests != 1 || agg.Enqueued != 5 || agg.DispatchLatency.Total != 2 {
		t.Fatalf("aggregate = %+v", agg)
	}
	sp := p.SpanSnapshot()
	if sp.Count != 1 || sp.Failed != 0 {
		t.Fatalf("span stats = %+v", sp)
	}
	evs, gap := p.Hub.Since(0, 0)
	if gap != nil {
		t.Fatalf("gap on fresh hub: %+v", gap)
	}
	types := make([]string, 0, len(evs))
	for _, ev := range evs {
		types = append(types, ev.Type)
	}
	if len(types) != 2 || types[0] != EventForensics || types[1] != EventSpan {
		t.Fatalf("published types = %v", types)
	}
}

func TestPlaneSyncModeAppliesInline(t *testing.T) {
	p := NewPlane(PlaneConfig{Sync: true})
	defer p.Close()
	p.SubmitEval(&EvalRecord{RequestID: "r", Metrics: metricsFixture(t)})
	// No barrier needed: sync mode applied on the submitting goroutine.
	if agg := p.KernelSnapshot(); agg.Requests != 1 {
		t.Fatalf("sync submit not applied: %+v", agg)
	}
	_, _, syncApplied, _ := p.FlushStats()
	if syncApplied != 1 {
		t.Fatalf("syncApplied = %d, want 1", syncApplied)
	}
}

func TestPlaneSubmitAfterCloseNeverDrops(t *testing.T) {
	p := NewPlane(PlaneConfig{})
	p.Close()
	p.SubmitEval(&EvalRecord{RequestID: "late", Metrics: metricsFixture(t)})
	if agg := p.KernelSnapshot(); agg.Requests != 1 {
		t.Fatalf("post-close submit dropped: %+v", agg)
	}
	_, _, syncApplied, _ := p.FlushStats()
	if syncApplied != 1 {
		t.Fatalf("post-close inline apply not counted: %d", syncApplied)
	}
	// The hub is closed, so the event side is a counted no-op, not a hang.
	published, _ := p.Hub.Counts()
	if published["after-close"] == 0 && published[EventForensics] != 0 {
		t.Fatalf("unexpected hub counts after close: %+v", published)
	}
}

func TestPlaneBatches(t *testing.T) {
	p := NewPlane(PlaneConfig{QueueDepth: 128, BatchMax: 64})
	defer p.Close()
	const n = 100
	for i := 0; i < n; i++ {
		p.SubmitSpan(&Span{RequestID: "r", Attack: "a", Defense: "d"})
	}
	p.Barrier()
	batches, items, _, fallbacks := p.FlushStats()
	if items != n+1 { // +1 for the barrier item
		t.Fatalf("items = %d, want %d", items, n+1)
	}
	if got := p.SpanSnapshot().Count; got != n {
		t.Fatalf("span count = %d, want %d", got, n)
	}
	if batches+fallbacks > n+1 {
		t.Fatalf("no batching happened: batches=%d fallbacks=%d", batches, fallbacks)
	}
}

func TestPlaneCampaignFlowsToHub(t *testing.T) {
	p := NewPlane(PlaneConfig{Ledger: LedgerConfig{CampaignScore: 10, CampaignMinRequests: 2}})
	defer p.Close()
	for i := 0; i < 3; i++ {
		p.SubmitEval(&EvalRecord{
			RequestID: "r",
			Tenant:    "t",
			Scope:     "loopscan",
			Fragments: []ClassFragment{{Class: "implicit-clock", Score: 8}},
		})
	}
	p.Barrier()
	evs, _ := p.Hub.Since(0, 0)
	var campaigns int
	for _, ev := range evs {
		if ev.Type == EventCampaign {
			campaigns++
		}
	}
	if campaigns != 1 {
		t.Fatalf("campaign events = %d, want 1", campaigns)
	}
	if p.Ledger.Campaigns() != 1 {
		t.Fatalf("ledger campaigns = %d", p.Ledger.Campaigns())
	}
}

func TestPlaneExpositionSelfChecks(t *testing.T) {
	p := NewPlane(PlaneConfig{})
	defer p.Close()
	p.SubmitEval(&EvalRecord{RequestID: "r", Metrics: metricsFixture(t)})
	p.SubmitSpan(&Span{RequestID: "r", Attack: "a", Defense: "d", EvalNs: 100})
	p.Barrier()
	agg := p.KernelSnapshot()
	sp := p.SpanSnapshot()
	fams := agg.Families()
	fams = append(fams, sp.Families()...)
	fams = append(fams, p.Families()...)
	var sb strings.Builder
	if err := WriteExposition(&sb, fams); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := ParseExposition(sb.String()); err != nil {
		t.Fatalf("full plane exposition failed self-check: %v\n%s", err, sb.String())
	}
}
