package telemetry

import (
	"strings"
	"testing"

	"jskernel/internal/sim"
	"jskernel/internal/trace"
)

func buildSample() []Family {
	var h trace.Histogram
	h.Observe(1)
	h.Observe(100)
	h.Observe(5000)
	h.Observe(1 << 40)
	return []Family{
		Counter("jsk_test_requests", "Requests seen.", 42),
		Gauge("jsk_test_depth", "Current depth.", 3.5),
		LabeledCounter("jsk_test_api", "Per-API counts.", "api", map[string]uint64{
			"setTimeout":  7,
			"postMessage": 2,
		}),
		HistogramFamily("jsk_test_latency_seconds", "Latency.", &h),
	}
}

func TestExpositionRoundTrip(t *testing.T) {
	var sb strings.Builder
	if err := WriteExposition(&sb, buildSample()); err != nil {
		t.Fatalf("write: %v", err)
	}
	text := sb.String()
	if !strings.HasSuffix(text, "# EOF\n") {
		t.Fatalf("exposition missing EOF terminator:\n%s", text)
	}
	fams, err := ParseExposition(text)
	if err != nil {
		t.Fatalf("self-check parser rejected our own exposition: %v\n%s", err, text)
	}
	byName := map[string]Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	if f, ok := byName["jsk_test_requests"]; !ok || f.Type != TypeCounter {
		t.Fatalf("jsk_test_requests missing or mistyped: %+v", byName)
	}
	if f := byName["jsk_test_api"]; len(f.Samples) != 2 {
		t.Fatalf("labeled counter samples = %d, want 2", len(f.Samples))
	} else if f.Samples[0].Labels[0].Value != "postMessage" {
		t.Fatalf("labeled counter not sorted: %+v", f.Samples)
	}
	hist := byName["jsk_test_latency_seconds"]
	if hist.Type != TypeHistogram {
		t.Fatalf("histogram family mistyped: %v", hist.Type)
	}
	var sawInf, sawCount, sawSum bool
	for _, s := range hist.Samples {
		switch s.Suffix {
		case "_bucket":
			for _, l := range s.Labels {
				if l.Name == "le" && l.Value == "+Inf" {
					sawInf = true
					if s.Value != 4 {
						t.Fatalf("+Inf bucket = %v, want 4", s.Value)
					}
				}
			}
		case "_count":
			sawCount = true
			if s.Value != 4 {
				t.Fatalf("_count = %v, want 4", s.Value)
			}
		case "_sum":
			sawSum = true
		}
	}
	if !sawInf || !sawCount || !sawSum {
		t.Fatalf("histogram missing required samples: inf=%v count=%v sum=%v", sawInf, sawCount, sawSum)
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	var h trace.Histogram
	for i := 0; i < 10; i++ {
		h.Observe(sim.Duration(1) << uint(i*3))
	}
	fam := HistogramFamily("jsk_cum_seconds", "x", &h)
	prev := -1.0
	prevLe := -1.0
	for _, s := range fam.Samples {
		if s.Suffix != "_bucket" {
			continue
		}
		var le string
		for _, l := range s.Labels {
			if l.Name == "le" {
				le = l.Value
			}
		}
		if le == "+Inf" {
			continue
		}
		edge := mustFloat(t, le)
		if edge <= prevLe {
			t.Fatalf("le edges not strictly increasing: %v after %v", edge, prevLe)
		}
		prevLe = edge
		if s.Value < prev {
			t.Fatalf("bucket counts not cumulative: %v after %v", s.Value, prev)
		}
		prev = s.Value
	}
}

func mustFloat(t *testing.T, s string) float64 {
	t.Helper()
	fams, err := ParseExposition("# TYPE x gauge\nx " + s + "\n# EOF\n")
	if err != nil {
		t.Fatalf("parse float %q: %v", s, err)
	}
	return fams[0].Samples[0].Value
}

func TestParserRejections(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"missing EOF", "# TYPE a counter\na_total 1\n"},
		{"content after EOF", "# TYPE a counter\na_total 1\n# EOF\na_total 2\n"},
		{"duplicate sample", "# TYPE a counter\na_total 1\na_total 2\n# EOF\n"},
		{"negative counter", "# TYPE a counter\na_total -1\n# EOF\n"},
		{"counter bad suffix", "# TYPE a counter\na_bucket 1\n# EOF\n"},
		{"duplicate type", "# TYPE a counter\n# TYPE a gauge\na 1\n# EOF\n"},
		{"nan value", "# TYPE a gauge\na NaN\n# EOF\n"},
		{"blank line", "# TYPE a gauge\n\na 1\n# EOF\n"},
		{"histogram no inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_count 1\nh_sum 1\n# EOF\n"},
		{"histogram non-cumulative", "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_count 2\nh_sum 1\n# EOF\n"},
		{"histogram count mismatch", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_count 3\nh_sum 1\n# EOF\n"},
		{"histogram missing sum", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_count 2\n# EOF\n"},
	}
	for _, tc := range cases {
		if _, err := ParseExposition(tc.text); err == nil {
			t.Errorf("%s: parser accepted invalid exposition", tc.name)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	fams := []Family{{
		Name: "jsk_esc",
		Type: TypeCounter,
		Help: "x",
		Samples: []Sample{{
			Suffix: "_total",
			Labels: []Label{{Name: "k", Value: "a\"b\\c\nd"}},
			Value:  1,
		}},
	}}
	var sb strings.Builder
	if err := WriteExposition(&sb, fams); err != nil {
		t.Fatalf("write: %v", err)
	}
	parsed, err := ParseExposition(sb.String())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	got := parsed[0].Samples[0].Labels[0].Value
	if got != "a\"b\\c\nd" {
		t.Fatalf("label escape round-trip: got %q", got)
	}
}
