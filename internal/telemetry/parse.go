package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ParseExposition parses and validates OpenMetrics text produced by
// WriteExposition (or any conforming writer of the same subset). It is
// the self-check half of the exposition contract: /metricsz is tested
// against this parser in unit tests, in the service smoke suite, and
// in the chaos runs, so a format regression fails loudly instead of
// silently breaking scrapers.
//
// Structural rules enforced:
//
//   - every sample belongs to a family declared by a preceding # TYPE
//     line with a known type; # TYPE appears at most once per family;
//   - counter samples are named <family>_total, gauges <family>,
//     histogram series <family>_bucket/_count/_sum;
//   - histogram buckets (per label set, ignoring le) carry strictly
//     increasing le edges, non-decreasing cumulative counts, a closing
//     le="+Inf" bucket, and a _count equal to the +Inf bucket;
//   - no duplicate (sample name, label set) lines;
//   - the exposition ends with "# EOF" and nothing after it.
func ParseExposition(text string) ([]Family, error) {
	p := &expoParser{
		families: map[string]*Family{},
		seen:     map[string]bool{},
	}
	lines := strings.Split(text, "\n")
	sawEOF := false
	for i, line := range lines {
		lineNo := i + 1
		if sawEOF {
			if strings.TrimSpace(line) != "" {
				return nil, fmt.Errorf("line %d: content after # EOF", lineNo)
			}
			continue
		}
		if line == "" {
			if i == len(lines)-1 {
				continue
			}
			return nil, fmt.Errorf("line %d: blank line inside exposition", lineNo)
		}
		if line == "# EOF" {
			sawEOF = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := p.meta(line, lineNo); err != nil {
				return nil, err
			}
			continue
		}
		if err := p.sample(line, lineNo); err != nil {
			return nil, err
		}
	}
	if !sawEOF {
		return nil, fmt.Errorf("exposition does not end with # EOF")
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	return p.ordered, nil
}

type expoParser struct {
	families map[string]*Family
	ordered  []Family
	order    []string
	seen     map[string]bool // duplicate (name, labelset) guard
}

var validName = func(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// meta handles # HELP and # TYPE lines.
func (p *expoParser) meta(line string, lineNo int) error {
	parts := strings.SplitN(line, " ", 4)
	if len(parts) < 3 || parts[0] != "#" {
		return fmt.Errorf("line %d: malformed comment line %q", lineNo, line)
	}
	keyword, name := parts[1], parts[2]
	switch keyword {
	case "HELP":
		if !validName(name) {
			return fmt.Errorf("line %d: invalid family name %q", lineNo, name)
		}
		return nil
	case "TYPE":
		if !validName(name) {
			return fmt.Errorf("line %d: invalid family name %q", lineNo, name)
		}
		if len(parts) != 4 {
			return fmt.Errorf("line %d: # TYPE without a type", lineNo)
		}
		typ := parts[3]
		switch typ {
		case TypeCounter, TypeGauge, TypeHistogram:
		default:
			return fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
		}
		if _, dup := p.families[name]; dup {
			return fmt.Errorf("line %d: duplicate # TYPE for family %q", lineNo, name)
		}
		f := &Family{Name: name, Type: typ}
		p.families[name] = f
		p.order = append(p.order, name)
		return nil
	default:
		return fmt.Errorf("line %d: unknown comment keyword %q", lineNo, keyword)
	}
}

// sample parses one exposition sample line and attributes it to its
// declared family.
func (p *expoParser) sample(line string, lineNo int) error {
	nameEnd := strings.IndexAny(line, "{ ")
	if nameEnd <= 0 {
		return fmt.Errorf("line %d: malformed sample %q", lineNo, line)
	}
	sampleName := line[:nameEnd]
	if !validName(sampleName) {
		return fmt.Errorf("line %d: invalid sample name %q", lineNo, sampleName)
	}
	rest := line[nameEnd:]
	var labels []Label
	if rest[0] == '{' {
		var err error
		labels, rest, err = parseLabels(rest, lineNo)
		if err != nil {
			return err
		}
	}
	valueText := strings.TrimSpace(rest)
	if valueText == "" {
		return fmt.Errorf("line %d: sample %q missing value", lineNo, sampleName)
	}
	value, err := parseValue(valueText)
	if err != nil {
		return fmt.Errorf("line %d: sample %q: %v", lineNo, sampleName, err)
	}

	fam, suffix, err := p.familyOf(sampleName, lineNo)
	if err != nil {
		return err
	}
	key := sampleName + "|" + labelKey(labels)
	if p.seen[key] {
		return fmt.Errorf("line %d: duplicate sample %s{%s}", lineNo, sampleName, labelKey(labels))
	}
	p.seen[key] = true
	fam.Samples = append(fam.Samples, Sample{Suffix: suffix, Labels: labels, Value: value})
	return nil
}

// familyOf resolves a sample name to its declared family and checks the
// suffix is legal for the family's type.
func (p *expoParser) familyOf(sampleName string, lineNo int) (*Family, string, error) {
	for _, suffix := range []string{"_total", "_bucket", "_count", "_sum", ""} {
		base := strings.TrimSuffix(sampleName, suffix)
		if suffix != "" && base == sampleName {
			continue
		}
		fam, ok := p.families[base]
		if !ok {
			continue
		}
		switch fam.Type {
		case TypeCounter:
			if suffix != "_total" {
				return nil, "", fmt.Errorf("line %d: counter family %q sample must be %s_total, got %q", lineNo, base, base, sampleName)
			}
		case TypeGauge:
			if suffix != "" {
				return nil, "", fmt.Errorf("line %d: gauge family %q sample must be bare, got %q", lineNo, base, sampleName)
			}
		case TypeHistogram:
			if suffix != "_bucket" && suffix != "_count" && suffix != "_sum" {
				return nil, "", fmt.Errorf("line %d: histogram family %q does not allow sample %q", lineNo, base, sampleName)
			}
		}
		return fam, suffix, nil
	}
	return nil, "", fmt.Errorf("line %d: sample %q has no preceding # TYPE declaration", lineNo, sampleName)
}

// parseLabels consumes a {name="value",...} block, returning the labels
// and the remainder of the line.
func parseLabels(s string, lineNo int) ([]Label, string, error) {
	var labels []Label
	i := 1 // past '{'
	for {
		if i >= len(s) {
			return nil, "", fmt.Errorf("line %d: unterminated label block", lineNo)
		}
		if s[i] == '}' {
			return labels, s[i+1:], nil
		}
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("line %d: label without '='", lineNo)
		}
		name := s[i : i+eq]
		if !validName(name) {
			return nil, "", fmt.Errorf("line %d: invalid label name %q", lineNo, name)
		}
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return nil, "", fmt.Errorf("line %d: label value for %q not quoted", lineNo, name)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return nil, "", fmt.Errorf("line %d: unterminated label value for %q", lineNo, name)
			}
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, "", fmt.Errorf("line %d: dangling escape in label %q", lineNo, name)
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("line %d: bad escape \\%c in label %q", lineNo, s[i+1], name)
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		labels = append(labels, Label{Name: name, Value: val.String()})
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

// parseValue accepts finite floats and the +Inf le edge convention.
func parseValue(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", s)
	}
	if math.IsNaN(v) {
		return 0, fmt.Errorf("NaN value")
	}
	return v, nil
}

// labelKey renders a label set canonically (sorted) for dedup keys.
func labelKey(labels []Label) string {
	parts := make([]string, 0, len(labels))
	for _, l := range labels {
		parts = append(parts, l.Name+"="+l.Value)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// validate runs the per-family structural checks after all lines parse.
func (p *expoParser) validate() error {
	for _, name := range p.order {
		fam := p.families[name]
		if fam.Type == TypeHistogram {
			if err := validateHistogram(fam); err != nil {
				return err
			}
		}
		for _, s := range fam.Samples {
			if fam.Type != TypeGauge && s.Value < 0 {
				return fmt.Errorf("family %q: negative %s sample %g", fam.Name, fam.Type, s.Value)
			}
		}
		p.ordered = append(p.ordered, *fam)
	}
	return nil
}

// histSeries groups one histogram's samples by their non-le label set.
type histSeries struct {
	edges  []float64
	counts []float64
	inf    *float64
	count  *float64
	sum    bool
}

// validateHistogram checks bucket monotonicity, the +Inf closing
// bucket, and count/bucket agreement for every label set of the family.
func validateHistogram(fam *Family) error {
	series := map[string]*histSeries{}
	groupKey := func(labels []Label) string {
		var rest []Label
		for _, l := range labels {
			if l.Name != "le" {
				rest = append(rest, l)
			}
		}
		return labelKey(rest)
	}
	get := func(k string) *histSeries {
		h := series[k]
		if h == nil {
			h = &histSeries{}
			series[k] = h
		}
		return h
	}
	var keys []string
	for _, s := range fam.Samples {
		k := groupKey(s.Labels)
		if _, ok := series[k]; !ok {
			keys = append(keys, k)
		}
		h := get(k)
		switch s.Suffix {
		case "_bucket":
			le := ""
			for _, l := range s.Labels {
				if l.Name == "le" {
					le = l.Value
				}
			}
			if le == "" {
				return fmt.Errorf("family %q: _bucket sample without le label", fam.Name)
			}
			if le == "+Inf" {
				v := s.Value
				h.inf = &v
				continue
			}
			edge, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("family %q: bad le edge %q", fam.Name, le)
			}
			h.edges = append(h.edges, edge)
			h.counts = append(h.counts, s.Value)
		case "_count":
			v := s.Value
			h.count = &v
		case "_sum":
			h.sum = true
		}
	}
	for _, k := range keys {
		h := series[k]
		label := fam.Name
		if k != "" {
			label += "{" + k + "}"
		}
		for i := 1; i < len(h.edges); i++ {
			if h.edges[i] <= h.edges[i-1] {
				return fmt.Errorf("histogram %s: le edges not increasing (%g after %g)", label, h.edges[i], h.edges[i-1])
			}
			if h.counts[i] < h.counts[i-1] {
				return fmt.Errorf("histogram %s: cumulative bucket counts decrease at le=%g", label, h.edges[i])
			}
		}
		if h.inf == nil {
			return fmt.Errorf("histogram %s: missing le=\"+Inf\" bucket", label)
		}
		if len(h.counts) > 0 && h.counts[len(h.counts)-1] > *h.inf {
			return fmt.Errorf("histogram %s: finite bucket exceeds +Inf bucket", label)
		}
		if h.count == nil {
			return fmt.Errorf("histogram %s: missing _count", label)
		}
		if *h.count != *h.inf {
			return fmt.Errorf("histogram %s: _count %g != +Inf bucket %g", label, *h.count, *h.inf)
		}
		if !h.sum {
			return fmt.Errorf("histogram %s: missing _sum", label)
		}
	}
	return nil
}
