package telemetry

import (
	"bytes"
	"fmt"
	"testing"
)

func probe(score int64) []ClassFragment {
	return []ClassFragment{{Class: "implicit-clock", Score: score}}
}

func TestLedgerSingleRequestNeverFlags(t *testing.T) {
	l := NewLedger(DefaultLedgerConfig())
	// One request with enormous fragment mass must not raise a campaign:
	// CampaignMinRequests guards the "each request stays clean" contract.
	found := l.Observe("r1", "t1", "loopscan", probe(1_000_000))
	if len(found) != 0 {
		t.Fatalf("single request flagged a campaign: %+v", found)
	}
}

func TestLedgerCampaignAcrossRequests(t *testing.T) {
	l := NewLedger(DefaultLedgerConfig())
	var found []CampaignFinding
	reqs := 0
	for i := 0; i < 10 && len(found) == 0; i++ {
		reqs++
		found = l.Observe(fmt.Sprintf("r%d", i), "t1", "loopscan", probe(48))
	}
	if len(found) != 1 {
		t.Fatalf("campaign not raised after %d requests", reqs)
	}
	f := found[0]
	if f.Tenant != "t1" || f.Scope != "loopscan" || f.Class != "implicit-clock" {
		t.Fatalf("finding key = %+v", f.LedgerKey)
	}
	if f.Requests < 3 {
		t.Fatalf("campaign with %d requests, want >= 3", f.Requests)
	}
	if len(f.RequestIDs) != f.Requests {
		t.Fatalf("evidence ids = %d, requests = %d", len(f.RequestIDs), f.Requests)
	}
	// Hysteresis: continuing the campaign must not duplicate the finding
	// while the score stays above half the threshold.
	more := l.Observe("rX", "t1", "loopscan", probe(48))
	if len(more) != 0 {
		t.Fatalf("duplicate campaign finding: %+v", more)
	}
}

func TestLedgerDecayOnInnocuousTraffic(t *testing.T) {
	cfg := DefaultLedgerConfig()
	l := NewLedger(cfg)
	l.Observe("r1", "t1", "loopscan", probe(64))
	// 20 innocuous requests decay the entry toward zero.
	for i := 0; i < 20; i++ {
		l.Observe(fmt.Sprintf("q%d", i), "t1", "other", nil)
	}
	rep := l.Report()
	if len(rep.Entries) != 1 {
		t.Fatalf("entries = %+v", rep.Entries)
	}
	if rep.Entries[0].Score != 0 {
		t.Fatalf("score after 20 decays = %d, want 0", rep.Entries[0].Score)
	}
	// A different tenant's entries must not decay.
	l2 := NewLedger(cfg)
	l2.Observe("r1", "t1", "loopscan", probe(64))
	l2.Observe("r2", "t2", "other", nil)
	if s := l2.Report().Entries[0].Score; s != 64 {
		t.Fatalf("cross-tenant decay: score = %d, want 64", s)
	}
}

func TestLedgerDeterministicForFixedSequence(t *testing.T) {
	run := func() []byte {
		l := NewLedger(DefaultLedgerConfig())
		for i := 0; i < 50; i++ {
			tenant := fmt.Sprintf("t%d", i%3)
			scope := []string{"loopscan", "cve-mirror"}[i%2]
			frags := []ClassFragment{
				{Class: "implicit-clock", Score: int64(10 + i%7)},
				{Class: "worker", Score: int64(i % 5)},
			}
			l.Observe(fmt.Sprintf("r%d", i), tenant, scope, frags)
		}
		var buf bytes.Buffer
		if err := l.WriteJSON(&buf); err != nil {
			t.Fatalf("write: %v", err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("ledger report not deterministic:\n%s\n---\n%s", a, b)
	}
}

func TestLedgerEvidenceCap(t *testing.T) {
	l := NewLedger(LedgerConfig{CampaignScore: 1 << 40})
	for i := 0; i < 20; i++ {
		l.Observe(fmt.Sprintf("r%d", i), "t", "s", probe(1000))
	}
	rep := l.Report()
	if rep.Entries[0].Requests != 20 {
		t.Fatalf("requests = %d", rep.Entries[0].Requests)
	}
	l.mu.Lock()
	e := l.entries[LedgerKey{Tenant: "t", Scope: "s", Class: "implicit-clock"}]
	ids := append([]string(nil), e.requestIDs...)
	l.mu.Unlock()
	if len(ids) != ledgerEvidenceCap {
		t.Fatalf("evidence ids = %d, want %d", len(ids), ledgerEvidenceCap)
	}
	if ids[len(ids)-1] != "r19" {
		t.Fatalf("evidence not most-recent-last: %v", ids)
	}
}
