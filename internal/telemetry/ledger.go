package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// The cross-request forensics ledger. Per-response forensics (PR 5's
// obs detectors, PR 7's happens-before detector) judge one evaluation
// at a time, so a patient attacker splits the probe across requests:
// each request runs a short implicit-clock loop that stays under every
// per-request threshold — or probes a *defended* configuration, where
// per-request forensics reports clean by construction — and the
// campaign only exists in the aggregate. The ledger is that aggregate:
// it accumulates per-request signature fragments keyed by (tenant,
// scope, channel class), decays them per observed request (never per
// wall second — verdicts on a fixed request sequence must be
// deterministic), and flags when the decayed mass and the number of
// distinct contributing requests both cross their campaign thresholds.

// LedgerConfig tunes accumulation and flagging.
type LedgerConfig struct {
	// Decay multiplies a tenant's accumulated scores by Num/Den on each
	// of that tenant's requests before the new fragments are added, so
	// old probing fades as a tenant sends innocuous traffic. Expressed
	// as a rational to keep the arithmetic exact and the verdicts
	// platform-independent. Default 3/4.
	DecayNum, DecayDen int64
	// CampaignScore is the decayed fragment mass at which an entry
	// flags. Default 96.
	CampaignScore int64
	// CampaignMinRequests is the minimum number of distinct contributing
	// requests before an entry may flag — the "no single request trips
	// it" guarantee: below this, no per-request fragment volume can
	// raise a campaign. Default 3.
	CampaignMinRequests int
	// RaceWeight scores one happens-before race finding relative to one
	// structural fragment event. Default 16.
	RaceWeight int64
}

// DefaultLedgerConfig returns the thresholds used by jsk-serve.
func DefaultLedgerConfig() LedgerConfig {
	return LedgerConfig{DecayNum: 3, DecayDen: 4, CampaignScore: 96, CampaignMinRequests: 3, RaceWeight: 16}
}

func (c *LedgerConfig) withDefaults() LedgerConfig {
	out := *c
	d := DefaultLedgerConfig()
	if out.DecayNum <= 0 || out.DecayDen <= 0 || out.DecayNum > out.DecayDen {
		out.DecayNum, out.DecayDen = d.DecayNum, d.DecayDen
	}
	if out.CampaignScore <= 0 {
		out.CampaignScore = d.CampaignScore
	}
	if out.CampaignMinRequests <= 0 {
		out.CampaignMinRequests = d.CampaignMinRequests
	}
	if out.RaceWeight <= 0 {
		out.RaceWeight = d.RaceWeight
	}
	return out
}

// ClassFragment is one request's structural evidence on one channel
// class, already collapsed from the raw detector tallies by the caller
// (internal/serve maps obs fragment counters and hb race findings to
// channel classes).
type ClassFragment struct {
	// Class is the channel class: "implicit-clock", "event-loop-probe",
	// "queue-contention", or a happens-before target class ("worker",
	// "buffer", ...).
	Class string `json:"class"`
	// Score is the request's fragment mass on the class.
	Score int64 `json:"score"`
}

// SortedFragments renders a class→score map as fragments in class
// order, dropping non-positive scores — the deterministic shape Observe
// expects from callers that accumulate by map.
func SortedFragments(byClass map[string]int64) []ClassFragment {
	classes := make([]string, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	out := make([]ClassFragment, 0, len(classes))
	for _, c := range classes {
		if byClass[c] > 0 {
			out = append(out, ClassFragment{Class: c, Score: byClass[c]})
		}
	}
	return out
}

// LedgerKey identifies one accumulation cell.
type LedgerKey struct {
	// Tenant attributes traffic; the empty tenant accumulates as "".
	Tenant string `json:"tenant"`
	// Scope is the probed surface — the attack row the requests name.
	Scope string `json:"scope"`
	// Class is the channel class of the fragments.
	Class string `json:"class"`
}

// CampaignFinding is one flagged slow-probe campaign.
type CampaignFinding struct {
	LedgerKey
	// Score is the decayed accumulated mass at flag time.
	Score int64 `json:"score"`
	// Requests counts distinct requests that contributed fragments.
	Requests int `json:"requests"`
	// TenantRequests counts every request the tenant has sent.
	TenantRequests int `json:"tenant_requests"`
	// RequestIDs lists contributing request IDs (most recent last,
	// capped at 8) as cross-request evidence.
	RequestIDs []string `json:"request_ids"`
}

// ledgerEntry is one (tenant, scope, class) accumulator.
type ledgerEntry struct {
	score      int64
	requests   int
	flagged    bool // hysteresis: one finding per crossing
	requestIDs []string
}

const ledgerEvidenceCap = 8

// Ledger accumulates fragments across requests. Observe is serialized
// by the plane's flusher (or by the caller in sync mode); the mutex
// exists for concurrent Report/WriteJSON snapshots.
type Ledger struct {
	cfg LedgerConfig

	mu       sync.Mutex
	entries  map[LedgerKey]*ledgerEntry
	tenants  map[string]int // tenant -> requests observed
	flagged  uint64
	observed uint64
}

// NewLedger builds an empty ledger.
func NewLedger(cfg LedgerConfig) *Ledger {
	return &Ledger{
		cfg:     cfg.withDefaults(),
		entries: make(map[LedgerKey]*ledgerEntry),
		tenants: make(map[string]int),
	}
}

// Config returns the ledger's effective (defaulted) configuration, so
// callers weighting fragments — e.g. races via RaceWeight — use the
// same numbers the ledger thresholds against.
func (l *Ledger) Config() LedgerConfig { return l.cfg }

// Observe folds one request's fragments into the tenant's cells and
// returns any campaigns newly raised by this request. Every entry of
// the tenant decays first — innocuous requests reduce suspicion — then
// fragments add, then thresholds are checked with hysteresis: an entry
// flags once per crossing and re-arms only after decaying below half
// the campaign score.
func (l *Ledger) Observe(requestID, tenant, scope string, frags []ClassFragment) []CampaignFinding {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.observed++
	l.tenants[tenant]++
	tenantReqs := l.tenants[tenant]

	for k, e := range l.entries {
		if k.Tenant != tenant {
			continue
		}
		e.score = e.score * l.cfg.DecayNum / l.cfg.DecayDen
		if e.flagged && e.score < l.cfg.CampaignScore/2 {
			e.flagged = false
		}
	}

	var found []CampaignFinding
	for _, fr := range frags {
		if fr.Score <= 0 {
			continue
		}
		k := LedgerKey{Tenant: tenant, Scope: scope, Class: fr.Class}
		e := l.entries[k]
		if e == nil {
			e = &ledgerEntry{}
			l.entries[k] = e
		}
		e.score += fr.Score
		e.requests++
		if len(e.requestIDs) == ledgerEvidenceCap {
			copy(e.requestIDs, e.requestIDs[1:])
			e.requestIDs[len(e.requestIDs)-1] = requestID
		} else {
			e.requestIDs = append(e.requestIDs, requestID)
		}
		if !e.flagged && e.score >= l.cfg.CampaignScore && e.requests >= l.cfg.CampaignMinRequests {
			e.flagged = true
			l.flagged++
			found = append(found, CampaignFinding{
				LedgerKey:      k,
				Score:          e.score,
				Requests:       e.requests,
				TenantRequests: tenantReqs,
				RequestIDs:     append([]string(nil), e.requestIDs...),
			})
		}
	}
	sort.Slice(found, func(i, j int) bool {
		if found[i].Scope != found[j].Scope {
			return found[i].Scope < found[j].Scope
		}
		return found[i].Class < found[j].Class
	})
	return found
}

// LedgerEntry is one accumulation cell of the report snapshot.
type LedgerEntry struct {
	LedgerKey
	Score    int64 `json:"score"`
	Requests int   `json:"requests"`
	Flagged  bool  `json:"flagged"`
}

// LedgerReport is the /ledgerz wire format and the CI artifact.
type LedgerReport struct {
	Observed  uint64        `json:"observed_requests"`
	Tenants   int           `json:"tenants"`
	Campaigns uint64        `json:"campaigns_flagged"`
	Entries   []LedgerEntry `json:"entries"`
}

// Report snapshots every cell, sorted by (tenant, scope, class).
func (l *Ledger) Report() LedgerReport {
	l.mu.Lock()
	defer l.mu.Unlock()
	rep := LedgerReport{Observed: l.observed, Tenants: len(l.tenants), Campaigns: l.flagged}
	entries := make([]LedgerEntry, 0, len(l.entries))
	for k, e := range l.entries {
		entries = append(entries, LedgerEntry{LedgerKey: k, Score: e.score, Requests: e.requests, Flagged: e.flagged})
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.Tenant != b.Tenant {
			return a.Tenant < b.Tenant
		}
		if a.Scope != b.Scope {
			return a.Scope < b.Scope
		}
		return a.Class < b.Class
	})
	rep.Entries = entries
	return rep
}

// Campaigns reports how many campaign findings the ledger has raised.
func (l *Ledger) Campaigns() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flagged
}

// WriteJSON renders the report as deterministic indented JSON.
func (l *Ledger) WriteJSON(w io.Writer) error {
	rep := l.Report()
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
