package telemetry

import (
	"context"
	"testing"
	"time"
)

func TestHubPublishAndSince(t *testing.T) {
	h := NewHub(8)
	for i := 0; i < 3; i++ {
		h.Publish(EventSpan, map[string]int{"i": i})
	}
	evs, gap := h.Since(0, 0)
	if gap != nil {
		t.Fatalf("unexpected gap: %+v", gap)
	}
	if len(evs) != 3 || evs[0].ID != 1 || evs[2].ID != 3 {
		t.Fatalf("Since(0) = %+v", evs)
	}
	evs, gap = h.Since(2, 0)
	if gap != nil || len(evs) != 1 || evs[0].ID != 3 {
		t.Fatalf("Since(2) = %+v gap=%+v", evs, gap)
	}
}

func TestHubRingEvictionReportsGap(t *testing.T) {
	h := NewHub(4)
	for i := 0; i < 10; i++ {
		h.Publish(EventForensics, i)
	}
	// Ring holds IDs 7..10; a resume from 2 lost 3..6.
	evs, gap := h.Since(2, 0)
	if gap == nil || gap.From != 3 || gap.To != 6 {
		t.Fatalf("gap = %+v, want [3,6]", gap)
	}
	if len(evs) != 4 || evs[0].ID != 7 {
		t.Fatalf("events after gap = %+v", evs)
	}
	_, evicted := h.Counts()
	if evicted != 6 {
		t.Fatalf("evicted = %d, want 6", evicted)
	}
}

func TestHubWaitWakesOnPublish(t *testing.T) {
	h := NewHub(4)
	done := make(chan bool, 1)
	go func() { done <- h.Wait(context.Background(), 5*time.Second) }()
	time.Sleep(10 * time.Millisecond)
	h.Publish(EventSpan, 1)
	select {
	case again := <-done:
		if !again {
			t.Fatal("Wait returned false on publish")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Wait did not wake on publish")
	}
}

func TestHubWaitEndsOnCloseAndContext(t *testing.T) {
	h := NewHub(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if h.Wait(ctx, time.Second) {
		t.Fatal("Wait ignored cancelled context")
	}
	h.Close()
	if h.Wait(context.Background(), time.Second) {
		t.Fatal("Wait returned true on closed hub")
	}
	if id := h.Publish(EventSpan, 1); id != 0 {
		t.Fatalf("publish after close returned id %d", id)
	}
	published, _ := h.Counts()
	if published["after-close"] != 1 {
		t.Fatalf("after-close publishes not counted: %+v", published)
	}
}

func TestHubEncodeErrorCounted(t *testing.T) {
	h := NewHub(4)
	if id := h.Publish(EventSpan, func() {}); id != 0 {
		t.Fatalf("unencodable payload got id %d", id)
	}
	published, _ := h.Counts()
	if published["encode-error"] != 1 {
		t.Fatalf("encode errors not counted: %+v", published)
	}
	if h.LastID() != 0 {
		t.Fatalf("encode error consumed an ID")
	}
}
