package telemetry

import (
	"jskernel/internal/sim"
	"jskernel/internal/trace"
)

// Span is one request's wall-clock service span: where the request's
// real time went between arriving at the daemon and its response bytes
// leaving it. Spans exist strictly outside the determinism boundary —
// they are published on /v1/events and aggregated into /metricsz, and
// never appear in /v1/eval response bytes.
type Span struct {
	// RequestID is the service-assigned request identifier (also
	// returned to the caller in the Jsk-Request-Id response header).
	RequestID string `json:"request_id"`
	Tenant    string `json:"tenant,omitempty"`
	Attack    string `json:"attack"`
	Defense   string `json:"defense"`
	// Code is the typed error code for failed requests, "" for 200s.
	Code string `json:"code,omitempty"`

	// Phase durations, wall nanoseconds: admission (parse + resolve +
	// admission control), queue (admitted until a worker dequeued it),
	// eval (the evaluation on the worker), render (encoding and writing
	// the response).
	AdmissionNs int64 `json:"admission_ns"`
	QueueNs     int64 `json:"queue_ns"`
	EvalNs      int64 `json:"eval_ns"`
	RenderNs    int64 `json:"render_ns"`

	// Link joins this wall-clock span to the request's virtual-time
	// kernel trace.
	Link *SpanLink `json:"link,omitempty"`
}

// SpanLink is the span-link record: the join between one service span
// and the deterministic kernel trace the request produced. The two
// sides share no clock — the link carries the trace's own coordinates
// (environment runs, final record sequence, virtual-time high water)
// so an offline trace export can be matched to the request that
// produced it.
type SpanLink struct {
	// Runs is the number of kernel environment generations the
	// evaluation traced.
	Runs int `json:"runs"`
	// LastSeq is the request trace session's final record sequence.
	LastSeq uint64 `json:"last_seq"`
	// VTMaxMs is the trace's virtual-time high water in milliseconds.
	VTMaxMs float64 `json:"vt_max_ms"`
}

// Span phases, in exposition label order.
var spanPhases = [...]string{"admission", "queue", "eval", "render"}

// SpanStats aggregates span phase latencies for the exposition: one
// power-of-two histogram per phase over wall nanoseconds.
type SpanStats struct {
	Count   uint64
	Failed  uint64
	ByPhase [len(spanPhases)]trace.Histogram
}

// Fold adds one span.
func (st *SpanStats) Fold(sp *Span) {
	st.Count++
	if sp.Code != "" {
		st.Failed++
	}
	durs := [...]int64{sp.AdmissionNs, sp.QueueNs, sp.EvalNs, sp.RenderNs}
	for i, d := range durs {
		st.ByPhase[i].Observe(sim.Duration(d))
	}
}

// Families renders the span aggregate as exposition families.
func (st *SpanStats) Families() []Family {
	fams := []Family{
		Counter("jsk_spans", "Completed request spans recorded by the telemetry plane.", st.Count),
		Counter("jsk_spans_failed", "Spans whose request ended in a typed error.", st.Failed),
	}
	hist := Family{
		Name: "jsk_span_phase_seconds",
		Type: TypeHistogram,
		Help: "Wall-clock time per request phase (admission, queue, eval, render).",
	}
	for i, phase := range spanPhases {
		part := HistogramFamily("jsk_span_phase_seconds", "", &st.ByPhase[i], Label{Name: "phase", Value: phase})
		hist.Samples = append(hist.Samples, part.Samples...)
	}
	fams = append(fams, hist)
	return fams
}
