package telemetry

import (
	"sync"
	"sync/atomic"

	"jskernel/internal/trace"
)

// PlaneConfig tunes the observability plane.
type PlaneConfig struct {
	// QueueDepth bounds the flusher queue. A full queue never blocks and
	// never drops: the submitter applies its item inline (counted as a
	// sync fallback) so eval workers stay wait-free and no telemetry is
	// lost. Default 256.
	QueueDepth int
	// BatchMax bounds how many queued items one flush folds under a
	// single aggregate-lock acquisition. Default 64.
	BatchMax int
	// Sync disables the flusher entirely: every submission applies
	// inline. This is the un-batched baseline jsk-bench compares the
	// flusher against; production keeps it off.
	Sync bool
	// EventRing is the hub's replay ring capacity. Default 1024.
	EventRing int
	// Ledger tunes the cross-request forensics ledger.
	Ledger LedgerConfig
}

// EvalRecord is the worker-side telemetry of one evaluation: the
// kernel metrics registry to aggregate, the forensic payload to
// stream, and the signature fragments to feed the ledger. It is pure
// data — fully assembled on the worker, applied and published by the
// flusher later — so batching never delays the response itself.
type EvalRecord struct {
	RequestID string
	Tenant    string
	// Scope is the ledger scope: the attack row the request named.
	Scope string
	// Metrics is the request's kernel metrics registry (nil when the
	// evaluation failed before tracing).
	Metrics *trace.Metrics
	// Forensics, when non-nil, is published verbatim as an EventForensics
	// payload.
	Forensics any
	// Fragments feed the ledger.
	Fragments []ClassFragment
}

// item travels through the flusher queue.
type item struct {
	eval    *EvalRecord
	span    *Span
	barrier chan struct{}
}

// KernelAggregate is the cross-request fold of per-session kernel
// metrics registries: the same totals /statsz reported since PR 6,
// plus the distributions — dispatch-latency histogram, per-API
// enqueue counters, queue-depth high water — that the OpenMetrics
// exposition needs and a scalar fold cannot carry.
type KernelAggregate struct {
	Requests           uint64
	Installs           uint64
	Enqueued           uint64
	Confirmed          uint64
	Dispatched         uint64
	Shed               uint64
	Cancelled          uint64
	Expired            uint64
	Panics             uint64
	Quarantines        uint64
	Native             uint64
	PolicyDecisions    uint64
	InterposeCrossings uint64
	InterposeVirtualNs uint64
	DispatchLatency    trace.Histogram
	APIEnqueues        map[string]uint64
	QueueHighWater     int
}

// fold adds one request's registry.
func (a *KernelAggregate) fold(m *trace.Metrics) {
	if m == nil {
		return
	}
	a.Requests++
	a.Installs += m.Installs
	a.Enqueued += m.Enqueued
	a.Confirmed += m.Confirmed
	a.Dispatched += m.Dispatched
	a.Shed += m.Shed
	a.Cancelled += m.Cancelled
	a.Expired += m.Expired
	a.Panics += m.Panics
	a.Quarantines += m.Quarantines
	a.Native += m.Native
	a.PolicyDecisions += m.PolicyDecisions
	a.InterposeCrossings += m.InterposeCrossings
	a.InterposeVirtualNs += uint64(m.InterposeVirtual)
	lat := m.DispatchLatency
	for i, c := range lat.Counts {
		a.DispatchLatency.Counts[i] += c
	}
	a.DispatchLatency.Total += lat.Total
	a.DispatchLatency.Sum += lat.Sum
	if lat.Max > a.DispatchLatency.Max {
		a.DispatchLatency.Max = lat.Max
	}
	if a.APIEnqueues == nil {
		a.APIEnqueues = make(map[string]uint64)
	}
	for _, c := range m.APICounts() {
		a.APIEnqueues[c.Name] += c.Count
	}
	for _, d := range m.QueueHighWater() {
		if d.HighWater > a.QueueHighWater {
			a.QueueHighWater = d.HighWater
		}
	}
}

// clone deep-copies the aggregate for snapshots.
func (a *KernelAggregate) clone() KernelAggregate {
	out := *a
	out.APIEnqueues = make(map[string]uint64, len(a.APIEnqueues))
	for k, v := range a.APIEnqueues {
		out.APIEnqueues[k] = v
	}
	return out
}

// Plane is the live observability plane jsk-serve mounts when
// telemetry is on: one batching flusher, one kernel aggregate, one
// span aggregate, one event hub, one ledger.
//
// Submission is wait-free for eval workers: items go through a bounded
// queue drained in batches by a single flusher goroutine, and when the
// queue is full (or the plane is closed, or Sync is set) the submitter
// applies the item inline instead — telemetry is never dropped and
// never blocks an evaluation, which is the flusher half of the chaos
// SLO. Scrapes read the aggregates under their own mutex and never
// touch the queue, so a scrape cannot block eval either.
type Plane struct {
	Hub    *Hub
	Ledger *Ledger

	cfg PlaneConfig

	mu     sync.Mutex // guards ch send vs. close
	ch     chan item
	closed bool
	done   chan struct{}

	aggMu  sync.Mutex
	kernel KernelAggregate
	spans  SpanStats

	flushBatches  atomic.Uint64
	flushItems    atomic.Uint64
	syncApplied   atomic.Uint64 // inline applications (Sync mode or closed plane)
	syncFallbacks atomic.Uint64 // inline applications forced by a full queue
}

// NewPlane builds and starts the plane. Callers must Close it.
func NewPlane(cfg PlaneConfig) *Plane {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.BatchMax <= 0 {
		cfg.BatchMax = 64
	}
	p := &Plane{
		Hub:    NewHub(cfg.EventRing),
		Ledger: NewLedger(cfg.Ledger),
		cfg:    cfg,
		ch:     make(chan item, cfg.QueueDepth),
		done:   make(chan struct{}),
	}
	if !cfg.Sync {
		p.start()
	}
	return p
}

// start launches the flusher goroutine. It is the telemetry plane's
// only goroutine, it owns no simulator or kernel state — items are
// pure data handed over the channel — and Close joins it before the
// hub shuts, so nothing outlives the plane. Audited in jsk-lint's
// goroutinescope sanction table.
func (p *Plane) start() {
	go func() {
		defer close(p.done)
		for it := range p.ch {
			batch := make([]item, 1, p.cfg.BatchMax)
			batch[0] = it
		drain:
			for len(batch) < p.cfg.BatchMax {
				select {
				case more, ok := <-p.ch:
					if !ok {
						break drain
					}
					batch = append(batch, more)
				default:
					break drain
				}
			}
			p.applyBatch(batch)
		}
	}()
}

// SubmitEval hands one evaluation record to the plane.
func (p *Plane) SubmitEval(rec *EvalRecord) { p.submit(item{eval: rec}) }

// SubmitSpan hands one completed request span to the plane.
func (p *Plane) SubmitSpan(sp *Span) { p.submit(item{span: sp}) }

// Barrier blocks until every item submitted before it has been
// applied. Tests and scrapers that need settled aggregates call this;
// the serving path never does.
func (p *Plane) Barrier() {
	ch := make(chan struct{})
	p.submit(item{barrier: ch})
	<-ch
}

// submit enqueues an item, falling back to inline application when the
// queue is full, the plane is closed, or Sync mode is on. The inline
// path applies the same code the flusher runs, so ordering is the only
// thing batching changes — never content.
func (p *Plane) submit(it item) {
	p.mu.Lock()
	if p.closed || p.cfg.Sync {
		p.mu.Unlock()
		p.syncApplied.Add(1)
		p.applyBatch([]item{it})
		return
	}
	select {
	case p.ch <- it:
		p.mu.Unlock()
	default:
		p.mu.Unlock()
		p.syncFallbacks.Add(1)
		p.applyBatch([]item{it})
	}
}

// applyBatch folds a batch under one aggregate-lock acquisition, then
// publishes the batch's events in submission order.
func (p *Plane) applyBatch(batch []item) {
	p.flushBatches.Add(1)
	p.flushItems.Add(uint64(len(batch)))
	p.aggMu.Lock()
	for _, it := range batch {
		if it.eval != nil {
			p.kernel.fold(it.eval.Metrics)
		}
		if it.span != nil {
			p.spans.Fold(it.span)
		}
	}
	p.aggMu.Unlock()
	for _, it := range batch {
		switch {
		case it.eval != nil:
			rec := it.eval
			if rec.Forensics != nil {
				p.Hub.Publish(EventForensics, rec.Forensics)
			}
			for _, c := range p.Ledger.Observe(rec.RequestID, rec.Tenant, rec.Scope, rec.Fragments) {
				p.Hub.Publish(EventCampaign, c)
			}
		case it.span != nil:
			p.Hub.Publish(EventSpan, it.span)
		case it.barrier != nil:
			close(it.barrier)
		}
	}
}

// KernelSnapshot returns a settled copy of the kernel aggregate.
func (p *Plane) KernelSnapshot() KernelAggregate {
	p.aggMu.Lock()
	defer p.aggMu.Unlock()
	return p.kernel.clone()
}

// SpanSnapshot returns a copy of the span aggregate.
func (p *Plane) SpanSnapshot() SpanStats {
	p.aggMu.Lock()
	defer p.aggMu.Unlock()
	return p.spans
}

// FlushStats reports the flusher's batching counters: batches, items,
// inline applications (sync mode/closed) and full-queue fallbacks.
func (p *Plane) FlushStats() (batches, items, syncApplied, syncFallbacks uint64) {
	return p.flushBatches.Load(), p.flushItems.Load(), p.syncApplied.Load(), p.syncFallbacks.Load()
}

// Close drains the queue, stops the flusher, and closes the hub so
// subscribers end their streams. Submissions after Close apply inline;
// their events are counted as after-close publishes. Idempotent.
func (p *Plane) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	if !p.cfg.Sync {
		close(p.ch)
	}
	p.mu.Unlock()
	if !p.cfg.Sync {
		<-p.done
	}
	p.Hub.Close()
}
