GO ?= go

.PHONY: all build test race vet lint check chaos races explore bench-parallel bench-obs bench-serve clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the jsk-lint determinism & kernel-invariant analyzers
# (internal/analysis) over the whole repo; nonzero on any unsuppressed
# finding.
lint:
	$(GO) run ./cmd/jsk-lint ./internal/... ./cmd/...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the pre-merge gate: compile, vet, jsk-lint, and the full
# test suite under the race detector.
check:
	./scripts/check.sh

# chaos re-runs the Table I security matrix under every standard fault
# plan and fails if any verdict flips.
chaos:
	$(GO) run ./cmd/jsk-eval -chaos

# races re-judges Table I's CVE half with the happens-before race
# detector (internal/hb); nonzero if any cell's race verdict disagrees
# with the experiment's own exploited/defended verdict.
races:
	$(GO) run ./cmd/jsk-race

# explore is the bounded schedule-search smoke: PCT + DPOR over two CVE
# cells with the attack state machines unarmed; nonzero unless every
# discovery's replay token reproduces its finding byte-identically.
explore:
	$(GO) run ./cmd/jsk-explore -matrix -cves CVE-2018-5092,CVE-2014-3194 -budget 2 -dpor-budget 4

# bench-parallel times Table I serially vs. on the worker pool, checks
# byte-identity, and writes BENCH_parallel.json (includes the host's
# CPU count — expect speedup ~1.0 on single-CPU machines).
bench-parallel:
	$(GO) run ./cmd/jsk-bench -out BENCH_parallel.json

# bench-obs times Dromaeo with streaming telemetry off vs fully on
# (trace session + obs events + profiler + detectors), checks the
# results are byte-identical either way, and writes BENCH_obs.json.
bench-obs:
	$(GO) run ./cmd/jsk-bench -obs -out BENCH_obs.json

# bench-serve load-tests the jsk-serve daemon: sustained throughput and
# p50/p95/p99 latency, then an overload run on a pool-1 queue-1 server
# that must shed load (429s) while every served response stays
# byte-identical to the unloaded reference. Writes BENCH_serve.json.
bench-serve:
	$(GO) run ./cmd/jsk-bench -serve -out BENCH_serve.json

clean:
	$(GO) clean ./...
