package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestUsage(t *testing.T) {
	var b strings.Builder
	if err := run(&b, nil); err == nil {
		t.Fatal("no args should error")
	}
	if err := run(&b, []string{"frobnicate"}); err == nil {
		t.Fatal("unknown subcommand should error")
	}
}

func TestList(t *testing.T) {
	var b strings.Builder
	if err := run(&b, []string{"list"}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"deterministic", "full", "CVE-2018-5092", "no-shared-buffers"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestShowBuiltins(t *testing.T) {
	for _, name := range []string{"deterministic", "full", "no-shared-buffers", "CVE-2013-1714"} {
		var b strings.Builder
		if err := run(&b, []string{"show", name}); err != nil {
			t.Errorf("show %s: %v", name, err)
			continue
		}
		if !strings.Contains(b.String(), `"name"`) {
			t.Errorf("show %s produced no JSON", name)
		}
	}
	var b strings.Builder
	if err := run(&b, []string{"show", "CVE-0000-0000"}); err == nil {
		t.Fatal("unknown policy should error")
	}
}

func TestValidate(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	if err := os.WriteFile(good, []byte(`{"name":"p","deterministic":true,"rules":[{"when":{"api":"xhr"},"action":"deny"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run(&b, []string{"validate", good}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "ok: policy") {
		t.Fatalf("validate output: %s", b.String())
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"rules": 7}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, []string{"validate", bad}); err == nil {
		t.Fatal("bad policy should fail validation")
	}
	if err := run(&b, []string{"validate", filepath.Join(dir, "missing.json")}); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestRecordAndSynthRoundTrip(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	var b strings.Builder
	if err := run(&b, []string{"record", "CVE-2013-1714", trace}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "trigger reached") {
		t.Fatalf("record output: %s", b.String())
	}
	b.Reset()
	if err := run(&b, []string{"synth", trace}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"api": "xhr"`) || !strings.Contains(out, `"action": "deny"`) {
		t.Fatalf("synth did not produce the XHR denial rule:\n%s", out)
	}
	if !strings.Contains(out, "analysis:") {
		t.Fatal("synth output missing analysis")
	}
}

func TestRecordUnknownCVE(t *testing.T) {
	var b strings.Builder
	if err := run(&b, []string{"record", "CVE-1999-0001", "/tmp/x.json"}); err == nil {
		t.Fatal("unknown CVE should error")
	}
}

func TestSynthBadTrace(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"not":"a trace"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run(&b, []string{"synth", bad}); err == nil {
		t.Fatal("malformed trace should error")
	}
	benign := filepath.Join(dir, "benign.json")
	if err := os.WriteFile(benign, []byte(`[]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, []string{"synth", benign}); err == nil {
		t.Fatal("benign trace should synthesize nothing")
	}
}
