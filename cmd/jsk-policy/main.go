// Command jsk-policy works with JSKernel security policies:
//
//	jsk-policy list                          builtin policies
//	jsk-policy show CVE-2018-5092            dump a builtin policy as JSON
//	jsk-policy validate my-policy.json       parse-check a policy file
//	jsk-policy record CVE-2014-1488 t.json   record an exploit's native trace
//	jsk-policy synth t.json                  synthesize a policy from a trace
//
// record + synth together implement the paper's future work: automatic
// policy extraction for a new vulnerability.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"jskernel/internal/attack"
	"jskernel/internal/browser"
	"jskernel/internal/defense"
	"jskernel/internal/policy"
	"jskernel/internal/vuln"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "jsk-policy:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	if len(args) == 0 {
		return usageError()
	}
	switch args[0] {
	case "list":
		return list(w)
	case "show":
		if len(args) < 2 {
			return fmt.Errorf("show: need a policy name (e.g. CVE-2018-5092, full, deterministic)")
		}
		return show(w, args[1])
	case "validate":
		if len(args) < 2 {
			return fmt.Errorf("validate: need a policy file")
		}
		return validate(w, args[1])
	case "record":
		if len(args) < 3 {
			return fmt.Errorf("record: need a CVE id and an output file")
		}
		return record(w, args[1], args[2])
	case "synth":
		if len(args) < 2 {
			return fmt.Errorf("synth: need a trace file")
		}
		return synth(w, args[1])
	default:
		return usageError()
	}
}

func usageError() error {
	return fmt.Errorf("usage: jsk-policy list | show <name> | validate <file> | record <cve> <out.json> | synth <trace.json>")
}

func list(w io.Writer) error {
	fmt.Fprintln(w, "builtin policies:")
	fmt.Fprintln(w, "  deterministic        general deterministic scheduling (§II-B1)")
	fmt.Fprintln(w, "  full                 deterministic + all CVE policies")
	fmt.Fprintln(w, "  no-shared-buffers    deny SharedArrayBuffer (post-Spectre hardening)")
	for _, id := range policy.CVEIDs() {
		fmt.Fprintf(w, "  %-20s %s\n", id, vuln.Description(vuln.CVE(id)))
	}
	return nil
}

func resolve(name string) (*policy.Spec, error) {
	switch name {
	case "deterministic":
		return policy.Deterministic(), nil
	case "full":
		return policy.FullDefense(), nil
	case "no-shared-buffers":
		return policy.DisableSharedBuffers(), nil
	default:
		return policy.ForCVE(name)
	}
}

func show(w io.Writer, name string) error {
	spec, err := resolve(name)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", data)
	return err
}

func validate(w io.Writer, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	spec, err := policy.Parse(data)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "ok: policy %q, deterministic=%v, quantum=%dµs, %d rules\n",
		spec.PolicyName, spec.Deterministic(), spec.QuantumMicros, len(spec.Rules))
	return nil
}

// record runs a known exploit driver against the undefended browser and
// writes the native trace, giving synth something to work on (for a real
// zero-day, the trace would come from instrumented browsing).
func record(w io.Writer, cveID, outPath string) error {
	var target *attack.CVEAttack
	for _, a := range attack.CVEAttacks() {
		if string(a.CVE) == cveID {
			target = a
			break
		}
	}
	if target == nil {
		return fmt.Errorf("unknown CVE %q (see jsk-policy list)", cveID)
	}
	d := defense.Chrome()
	env := d.NewEnv(defense.EnvOptions{
		Seed:        1,
		PrivateMode: target.CVE == vuln.CVE20177843,
	})
	rec := &browser.Recorder{}
	env.Browser.AddTracer(rec)
	if err := target.Exploit(env); err != nil {
		return fmt.Errorf("exploit: %w", err)
	}
	if !env.Registry.Exploited(target.CVE) {
		return fmt.Errorf("exploit did not trigger; nothing to record")
	}
	data, err := json.MarshalIndent(rec.Events(), "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "recorded %d native events to %s (trigger reached: %s)\n",
		rec.Len(), outPath, target.CVE)
	return nil
}

func synth(w io.Writer, tracePath string) error {
	data, err := os.ReadFile(tracePath)
	if err != nil {
		return err
	}
	var events []browser.TraceEvent
	if err := json.Unmarshal(data, &events); err != nil {
		return fmt.Errorf("trace file: %w", err)
	}
	spec, findings, err := policy.Synthesize("synthesized", events)
	if err != nil {
		return err
	}
	for _, f := range findings {
		fmt.Fprintf(w, "finding: %s -> %s\n  evidence: %v %q\n  analysis: %s\n",
			f.Rule.When.API, f.Rule.Action, f.Evidence.Kind, f.Evidence.Detail, f.Analysis)
	}
	out, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "\n%s\n", out)
	return err
}
