package main

import (
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var b strings.Builder
	if err := run(&b, []string{"-list"}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"svg-filtering", "CVE-2018-5092", "jskernel-chrome", "timing attacks:"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestMissingAttackFlag(t *testing.T) {
	var b strings.Builder
	if err := run(&b, nil); err == nil {
		t.Fatal("missing -attack should error")
	}
}

func TestUnknownAttack(t *testing.T) {
	var b strings.Builder
	if err := run(&b, []string{"-attack", "quantum-leap"}); err == nil {
		t.Fatal("unknown attack should error")
	}
}

func TestUnknownDefense(t *testing.T) {
	var b strings.Builder
	if err := run(&b, []string{"-attack", "cache-attack", "-defense", "netscape"}); err == nil {
		t.Fatal("unknown defense should error")
	}
}

func TestTimingAttackVerdict(t *testing.T) {
	var b strings.Builder
	if err := run(&b, []string{"-attack", "history-sniffing", "-defense", "chrome", "-reps", "3"}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "vulnerable") {
		t.Errorf("legacy verdict should be vulnerable:\n%s", out)
	}
	if !strings.Contains(out, "channel") {
		t.Errorf("verdict should list channels:\n%s", out)
	}
}

func TestCVEAttackVerdict(t *testing.T) {
	var b strings.Builder
	if err := run(&b, []string{"-attack", "CVE-2013-1714", "-defense", "jskernel-chrome"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "defended") {
		t.Errorf("kernel verdict should be defended:\n%s", b.String())
	}
}
