// Command jsk-attack runs a single attack against a single defense and
// prints the detailed verdict: per-channel measurements for timing
// attacks, registry state for CVE exploits.
//
// Usage:
//
//	jsk-attack -list
//	jsk-attack -attack svg-filtering -defense chrome
//	jsk-attack -attack CVE-2018-5092 -defense jskernel-chrome
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"jskernel/internal/attack"
	"jskernel/internal/defense"
	"jskernel/internal/report"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "jsk-attack:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("jsk-attack", flag.ContinueOnError)
	var (
		list      = fs.Bool("list", false, "list attacks and defenses")
		attackID  = fs.String("attack", "", "attack id or CVE id")
		defenseID = fs.String("defense", "chrome", "defense id")
		reps      = fs.Int("reps", attack.Reps, "repetitions for timing attacks")
		seed      = fs.Int64("seed", 1, "base seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		fmt.Fprintln(w, "timing attacks:")
		for _, a := range attack.TimingAttacks() {
			fmt.Fprintf(w, "  %-18s %s (clock: %s)\n", a.ID, a.Label, a.ClockGroup)
		}
		fmt.Fprintln(w, "cve attacks:")
		for _, a := range attack.CVEAttacks() {
			fmt.Fprintf(w, "  %s\n", a.CVE)
		}
		fmt.Fprintln(w, "defenses:")
		for _, d := range append(defense.TableIDefenses(), defense.JSKernel("firefox"), defense.JSKernel("edge")) {
			fmt.Fprintf(w, "  %-18s %s\n", d.ID, d.Label)
		}
		return nil
	}
	if *attackID == "" {
		fs.Usage()
		return fmt.Errorf("pass -attack (see -list)")
	}

	d, err := defense.ByID(*defenseID)
	if err != nil {
		return err
	}

	for _, a := range attack.TimingAttacks() {
		if a.ID == *attackID {
			out := a.Evaluate(d, *reps, *seed)
			fmt.Fprintf(w, "%s vs %s: %s\n", a.Label, d.Label, verdict(out.Defended))
			for _, c := range out.Channels {
				fmt.Fprintf(w, "  channel %-14s meanA=%.3f meanB=%.3f cohens-d=%.2f leaks=%v\n",
					c.Channel, c.MeanA, c.MeanB, c.CohensD, c.Leaks)
			}
			return nil
		}
	}
	for _, a := range attack.CVEAttacks() {
		if string(a.CVE) == *attackID {
			out := attack.EvaluateCVE(a, d, *seed)
			fmt.Fprintf(w, "%s vs %s: %s (exploited=%v)\n", a.CVE, d.Label, verdict(out.Defended), out.Exploited)
			if out.Err != nil {
				fmt.Fprintf(w, "  driver note: %v\n", out.Err)
			}
			return nil
		}
	}
	return fmt.Errorf("unknown attack %q (see -list)", *attackID)
}

func verdict(defended bool) string {
	if defended {
		return report.CheckDefended + " defended"
	}
	return report.CheckVulnerable + " vulnerable"
}
