package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"jskernel/internal/analysis"
)

// seedViolationModule writes a throwaway module containing one of every
// analyzer's violations and chdirs into it for the test's duration.
func seedViolationModule(t *testing.T) {
	t.Helper()
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module seeded\n\ngo 1.22\n")
	write("internal/bad/bad.go", `package bad

import (
	"math/rand"
	"time"
)

func Stamp() time.Time { return time.Now() }

func Roll() int { return rand.Intn(6) }

func Spawn(f func()) { go f() }
`)
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	})
}

func TestSeededViolationsExitNonzero(t *testing.T) {
	seedViolationModule(t)
	var stdout, stderr bytes.Buffer
	if got := run([]string{"./internal/..."}, &stdout, &stderr); got != 1 {
		t.Fatalf("run = %d, want 1; stderr: %s", got, stderr.String())
	}
	out := stdout.String()
	for _, wantFrag := range []string{
		"internal/bad/bad.go:8", "[detwalltime]",
		"internal/bad/bad.go:10", "[detrand]",
		"internal/bad/bad.go:12", "[goroutinescope]",
	} {
		if !strings.Contains(out, wantFrag) {
			t.Errorf("output missing %q:\n%s", wantFrag, out)
		}
	}
}

func TestJSONOutput(t *testing.T) {
	seedViolationModule(t)
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-json", "./internal/..."}, &stdout, &stderr); got != 1 {
		t.Fatalf("run = %d, want 1; stderr: %s", got, stderr.String())
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 JSON diagnostics, got %d:\n%s", len(lines), stdout.String())
	}
	var analyzers []string
	for _, line := range lines {
		var d analysis.Diagnostic
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("line %q is not a JSON diagnostic: %v", line, err)
		}
		if d.File == "" || d.Line == 0 || d.Message == "" {
			t.Errorf("diagnostic %+v has empty fields", d)
		}
		analyzers = append(analyzers, d.Analyzer)
	}
	want := []string{"detwalltime", "detrand", "goroutinescope"}
	for _, w := range want {
		found := false
		for _, a := range analyzers {
			if a == w {
				found = true
			}
		}
		if !found {
			t.Errorf("no %s diagnostic in JSON output: %v", w, analyzers)
		}
	}
}

func TestCleanModuleExitsZero(t *testing.T) {
	seedViolationModule(t)
	// Replace the bad file with clean code: the driver must go quiet.
	if err := os.WriteFile(filepath.Join("internal", "bad", "bad.go"),
		[]byte("package bad\n\nfunc Fine() int { return 4 }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if got := run([]string{"./internal/..."}, &stdout, &stderr); got != 0 {
		t.Fatalf("run = %d, want 0; stdout: %s stderr: %s", got, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run printed: %s", stdout.String())
	}
}

func TestListAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-list"}, &stdout, &stderr); got != 0 {
		t.Fatalf("run -list = %d, want 0", got)
	}
	for _, name := range analysis.AnalyzerNames() {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s", name)
		}
	}
}
