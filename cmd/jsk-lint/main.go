// Command jsk-lint runs the repository's determinism and
// kernel-invariant static analyzers (internal/analysis) over the given
// package patterns — by default ./internal/... and ./cmd/... — and
// exits nonzero if any unsuppressed finding remains.
//
// Usage:
//
//	jsk-lint [-json] [-list] [pattern ...]
//
// Findings print as "file:line:col: [analyzer] message", or as one JSON
// object per line with -json (machine-readable for CI annotation
// tooling). Intentional exceptions are annotated in source with
// "//jsk:lint-ignore <analyzer> <reason>".
//
// Exit status: 0 clean, 1 findings, 2 usage or load/typecheck error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"jskernel/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("jsk-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit one JSON diagnostic object per line")
	list := fs.Bool("list", false, "list the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./internal/...", "./cmd/..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "jsk-lint:", err)
		return 2
	}
	modRoot, err := analysis.FindModuleRoot(wd)
	if err != nil {
		fmt.Fprintln(stderr, "jsk-lint:", err)
		return 2
	}
	loader, err := analysis.NewLoader(modRoot)
	if err != nil {
		fmt.Fprintln(stderr, "jsk-lint:", err)
		return 2
	}
	diags, err := loader.Run(patterns, analysis.Analyzers())
	if err != nil {
		fmt.Fprintln(stderr, "jsk-lint:", err)
		return 2
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		for _, d := range diags {
			if err := enc.Encode(d); err != nil {
				fmt.Fprintln(stderr, "jsk-lint:", err)
				return 2
			}
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "jsk-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
