package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"sort"
	"time"

	"jskernel/internal/attack"
	"jskernel/internal/defense"
	"jskernel/internal/expr/runner"
	"jskernel/internal/serve"
	"jskernel/internal/telemetry"
	"jskernel/internal/trace"
)

// ServeReport is the JSON schema of the -serve benchmark output. It
// records two runs against live jsk-serve daemons: a sustained run
// sized to the pool, and an overload run that deliberately outruns a
// pool-1 queue-1 server. The number that matters alongside throughput
// is CorrectPct: degradation must shed load, never accuracy, so both
// runs require every successful response to byte-match the unloaded
// reference — 100% or the benchmark fails.
type ServeReport struct {
	Experiment string `json:"experiment"`
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	Sustained ServePhase `json:"sustained"`
	Overload  ServePhase `json:"overload"`

	// Observability quantifies the live telemetry plane: the same
	// sustained load with the plane off, on with the batching flusher,
	// and on with the flusher disabled (every item applied inline on the
	// worker). All three phases demand 100% byte-identity against the
	// plane-off reference — the determinism contract under measurement —
	// and the batched/sync comparison is the flusher's earned win.
	Observability ObsComparison `json:"observability"`
}

// ObsComparison is the obs-off / obs-on-batched / obs-on-sync triple.
type ObsComparison struct {
	Off     ServePhase `json:"off"`
	Batched ServePhase `json:"batched"`
	Sync    ServePhase `json:"sync"`
	// ObsOverheadPct is the throughput cost of the batched plane over
	// plane-off: (off - batched) / off * 100.
	ObsOverheadPct float64 `json:"obs_overhead_pct"`
	// BatchingGainPct is the throughput recovered by batching over the
	// inline-apply baseline: (batched - sync) / sync * 100. End-to-end
	// throughput is dominated by the evaluations themselves (~ms each),
	// so at low core counts this reads as noise around zero; the
	// flusher's earned win lives in FlusherMicro.
	BatchingGainPct float64 `json:"batching_gain_pct"`
	// FlusherMicro isolates what batching actually buys: the cost an
	// eval worker pays to hand one record to the plane.
	FlusherMicro FlusherMicro `json:"flusher_micro"`
}

// FlusherMicro measures the plane in isolation: the same stream of
// realistic EvalRecords (a genuine kernel metrics registry from a
// traced run of the benchmark cell) submitted in batched and in sync
// mode. Batching moves the aggregate fold off the submitter — a
// channel hand-off versus folding histograms and per-API counters
// inline under the aggregate lock — so the worker-side submit cost is
// where the win is visible on any core count.
type FlusherMicro struct {
	Items int `json:"items"`
	// BatchedSubmitNs / SyncSubmitNs are the mean worker-side cost of
	// one SubmitEval in each mode, nanoseconds.
	BatchedSubmitNs float64 `json:"batched_submit_ns"`
	SyncSubmitNs    float64 `json:"sync_submit_ns"`
	// SubmitGainX is SyncSubmitNs / BatchedSubmitNs: how many times
	// cheaper the worker's hand-off is with the flusher on.
	SubmitGainX float64 `json:"submit_gain_x"`
	// ItemsPerBatch is the realized batching ratio of the batched run.
	ItemsPerBatch float64 `json:"items_per_batch"`
}

// ServePhase is one load phase of the serve benchmark.
type ServePhase struct {
	Pool       int `json:"pool"`
	QueueDepth int `json:"queue_depth"`
	Clients    int `json:"clients"`
	Requests   int `json:"requests"`
	Completed  int `json:"completed"`
	Shed       int `json:"shed"`
	// ShedRate is Shed / Requests: ~0 sustained, rising under overload.
	ShedRate float64 `json:"shed_rate"`
	// CorrectPct is the fraction of completed responses byte-identical
	// to the unloaded reference. Anything below 100 is a contract break.
	CorrectPct    float64 `json:"correct_pct"`
	ElapsedMs     float64 `json:"elapsed_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"p50_ms"`
	P95Ms         float64 `json:"p95_ms"`
	P99Ms         float64 `json:"p99_ms"`
	// Telemetry reports the plane's flusher counters when the phase ran
	// with the observability plane on: Batches/Items show the batching
	// ratio, InlineApplies counts sync-mode (or overflow) applications.
	Telemetry *PhaseTelemetry `json:"telemetry,omitempty"`
}

// PhaseTelemetry is the flusher accounting of one obs-on phase.
type PhaseTelemetry struct {
	FlushBatches  uint64 `json:"flush_batches"`
	FlushItems    uint64 `json:"flush_items"`
	InlineApplies uint64 `json:"inline_applies"`
	// ItemsPerBatch is the realized batching ratio (0 in sync mode).
	ItemsPerBatch float64 `json:"items_per_batch"`
}

// benchCell is the workload every benchmark request evaluates: one
// deterministic Table I cell, so correctness is plain byte equality.
func benchCell() serve.Request {
	return serve.Request{Attack: "loopscan", Defense: "jskernel-chrome", Seed: 42, Reps: 1}
}

// runServe drives the serve benchmark and writes the report.
func runServe(requests int, out string) error {
	// Unloaded reference: one warm server, one request.
	ref, err := referenceBody()
	if err != nil {
		return fmt.Errorf("reference: %w", err)
	}

	pool := runtime.GOMAXPROCS(0)
	fmt.Fprintf(os.Stderr, "jsk-bench: serve sustained (%d requests, pool %d)...\n", requests, pool)
	sustained, err := runServePhase(serve.Config{Pool: pool, QueueDepth: 4 * pool}, 2*pool, requests, ref)
	if err != nil {
		return fmt.Errorf("sustained: %w", err)
	}
	fmt.Fprintf(os.Stderr, "jsk-bench: serve overload (%d requests, pool 1, queue 1)...\n", requests)
	overload, err := runServePhase(serve.Config{Pool: 1, QueueDepth: 1}, 32, requests, ref)
	if err != nil {
		return fmt.Errorf("overload: %w", err)
	}

	fmt.Fprintf(os.Stderr, "jsk-bench: serve observability triple (%d requests x3, pool %d)...\n", requests, pool)
	obs, err := runObsComparison(pool, requests, ref)
	if err != nil {
		return fmt.Errorf("observability: %w", err)
	}

	rep := ServeReport{
		Experiment:    "serve",
		CPUs:          runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Sustained:     sustained,
		Overload:      overload,
		Observability: obs,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("sustained: %.0f req/s, p50 %.1fms p95 %.1fms p99 %.1fms, shed %.0f%%, correct %.0f%%\n",
		sustained.ThroughputRPS, sustained.P50Ms, sustained.P95Ms, sustained.P99Ms,
		sustained.ShedRate*100, sustained.CorrectPct)
	fmt.Printf("overload:  %.0f req/s, p50 %.1fms p95 %.1fms p99 %.1fms, shed %.0f%%, correct %.0f%% -> %s\n",
		overload.ThroughputRPS, overload.P50Ms, overload.P95Ms, overload.P99Ms,
		overload.ShedRate*100, overload.CorrectPct, out)

	fmt.Printf("obs:       off %.0f req/s | batched %.0f req/s (overhead %.1f%%, %.0f items/batch) | sync %.0f req/s (batching gain %.1f%%)\n",
		obs.Off.ThroughputRPS, obs.Batched.ThroughputRPS, obs.ObsOverheadPct,
		obs.Batched.Telemetry.ItemsPerBatch, obs.Sync.ThroughputRPS, obs.BatchingGainPct)
	fmt.Printf("flusher:   submit %.0fns batched vs %.0fns sync (%.1fx cheaper hand-off, %.0f items/batch)\n",
		obs.FlusherMicro.BatchedSubmitNs, obs.FlusherMicro.SyncSubmitNs,
		obs.FlusherMicro.SubmitGainX, obs.FlusherMicro.ItemsPerBatch)

	if sustained.CorrectPct < 100 || overload.CorrectPct < 100 {
		return fmt.Errorf("served responses diverged from the reference — load shed accuracy")
	}
	for _, ph := range []struct {
		name  string
		phase ServePhase
	}{{"off", obs.Off}, {"batched", obs.Batched}, {"sync", obs.Sync}} {
		if ph.phase.CorrectPct < 100 {
			return fmt.Errorf("obs %s phase diverged from the plane-off reference — telemetry leaked into response bytes", ph.name)
		}
	}
	if obs.FlusherMicro.SubmitGainX <= 1 {
		return fmt.Errorf("batched submit is not cheaper than inline apply (%.2fx) — the flusher earns nothing",
			obs.FlusherMicro.SubmitGainX)
	}
	if overload.ShedRate <= sustained.ShedRate {
		return fmt.Errorf("overload run shed no more than sustained (%.2f <= %.2f) — admission control not engaging",
			overload.ShedRate, sustained.ShedRate)
	}
	return nil
}

// runObsComparison runs the same sustained load three times: plane
// off, plane on with the batching flusher, plane on with inline
// applies. Identical pool/queue/client shape, identical workload, so
// the only variable is the telemetry path.
func runObsComparison(pool, requests int, ref []byte) (ObsComparison, error) {
	shape := func(cfg serve.Config) serve.Config {
		cfg.Pool = pool
		cfg.QueueDepth = 4 * pool
		return cfg
	}
	off, err := runServePhase(shape(serve.Config{}), 2*pool, requests, ref)
	if err != nil {
		return ObsComparison{}, fmt.Errorf("off: %w", err)
	}
	batched, err := runServePhase(shape(serve.Config{Telemetry: true}), 2*pool, requests, ref)
	if err != nil {
		return ObsComparison{}, fmt.Errorf("batched: %w", err)
	}
	sync, err := runServePhase(shape(serve.Config{Telemetry: true, TelemetrySync: true}), 2*pool, requests, ref)
	if err != nil {
		return ObsComparison{}, fmt.Errorf("sync: %w", err)
	}
	cmp := ObsComparison{Off: off, Batched: batched, Sync: sync}
	if off.ThroughputRPS > 0 {
		cmp.ObsOverheadPct = (off.ThroughputRPS - batched.ThroughputRPS) / off.ThroughputRPS * 100
	}
	if sync.ThroughputRPS > 0 {
		cmp.BatchingGainPct = (batched.ThroughputRPS - sync.ThroughputRPS) / sync.ThroughputRPS * 100
	}
	micro, err := runFlusherMicro()
	if err != nil {
		return ObsComparison{}, fmt.Errorf("flusher micro: %w", err)
	}
	cmp.FlusherMicro = micro
	return cmp, nil
}

// benchMetrics runs the benchmark cell once under a tracing session and
// returns its kernel metrics registry — the realistic fold payload for
// the flusher micro-benchmark.
func benchMetrics() (*trace.Metrics, error) {
	req := benchCell()
	d, err := defense.ByID(req.Defense)
	if err != nil {
		return nil, err
	}
	var a *attack.TimingAttack
	for _, row := range attack.TimingAttacks() {
		if row.ID == req.Attack {
			a = row
		}
	}
	if a == nil {
		return nil, fmt.Errorf("unknown bench attack %q", req.Attack)
	}
	sess := trace.NewSession()
	sess.SetRetain(false)
	a.Evaluate(d.WithTracer(sess), req.Reps, req.Seed)
	sess.Close()
	return sess.Metrics(), nil
}

// runFlusherMicro times the worker-side cost of handing one EvalRecord
// to the plane, batched versus sync, over the same record stream. The
// queue is sized to the run so no submission overflows to the inline
// path — overflow behavior is the chaos suite's job; this measures the
// serving-path common case.
func runFlusherMicro() (FlusherMicro, error) {
	m, err := benchMetrics()
	if err != nil {
		return FlusherMicro{}, err
	}
	const items = 5000
	run := func(syncMode bool) (nsPerSubmit, itemsPerBatch float64) {
		p := telemetry.NewPlane(telemetry.PlaneConfig{
			QueueDepth: items,
			Sync:       syncMode,
			EventRing:  16,
		})
		rec := &telemetry.EvalRecord{RequestID: "bench", Scope: "loopscan", Metrics: m}
		start := time.Now()
		for i := 0; i < items; i++ {
			p.SubmitEval(rec)
		}
		elapsed := time.Since(start)
		if !syncMode {
			p.Barrier()
		}
		p.Close()
		batches, folded, _, _ := p.FlushStats()
		if batches > 0 {
			itemsPerBatch = float64(folded) / float64(batches)
		}
		return float64(elapsed.Nanoseconds()) / items, itemsPerBatch
	}
	// Warm both paths once so neither timed side pays first-touch costs.
	run(true)
	run(false)
	micro := FlusherMicro{Items: items}
	micro.SyncSubmitNs, _ = run(true)
	micro.BatchedSubmitNs, micro.ItemsPerBatch = run(false)
	if micro.BatchedSubmitNs > 0 {
		micro.SubmitGainX = micro.SyncSubmitNs / micro.BatchedSubmitNs
	}
	return micro, nil
}

// referenceBody computes the fault-free response bytes for benchCell.
func referenceBody() ([]byte, error) {
	s, client, err := startServer(serve.Config{Pool: 1})
	if err != nil {
		return nil, err
	}
	defer stopServer(s)
	return client.EvalBytes(context.Background(), benchCell())
}

// runServePhase fires requests concurrent benchmark clients at a fresh
// server and aggregates outcome counts and client-observed latency.
func runServePhase(cfg serve.Config, clients, requests int, ref []byte) (ServePhase, error) {
	s, client, err := startServer(cfg)
	if err != nil {
		return ServePhase{}, err
	}
	defer stopServer(s)
	client.MaxAttempts = 1

	type outcome struct {
		latency time.Duration
		ok      bool
		correct bool
		shed    bool
		err     error
	}
	start := time.Now()
	results := runner.Map(clients, requests, func(int) outcome {
		t0 := time.Now()
		body, err := client.EvalBytes(context.Background(), benchCell())
		lat := time.Since(t0)
		if err != nil {
			if re, ok := err.(serve.RetryableError); ok && re.Retryable() {
				return outcome{latency: lat, shed: true}
			}
			return outcome{latency: lat, err: err}
		}
		return outcome{latency: lat, ok: true, correct: bytes.Equal(body, ref)}
	})
	elapsed := time.Since(start)

	ph := ServePhase{
		Pool:       cfg.Pool,
		QueueDepth: cfg.QueueDepth,
		Clients:    clients,
		Requests:   requests,
	}
	var latencies []time.Duration
	correct := 0
	for _, r := range results {
		switch {
		case r.err != nil:
			return ph, fmt.Errorf("untyped benchmark failure: %v", r.err)
		case r.shed:
			ph.Shed++
		default:
			ph.Completed++
			latencies = append(latencies, r.latency)
			if r.correct {
				correct++
			}
		}
	}
	ph.ShedRate = float64(ph.Shed) / float64(requests)
	if ph.Completed > 0 {
		ph.CorrectPct = float64(correct) / float64(ph.Completed) * 100
	}
	ph.ElapsedMs = float64(elapsed.Microseconds()) / 1000
	if elapsed > 0 {
		ph.ThroughputRPS = float64(ph.Completed) / elapsed.Seconds()
	}
	ph.P50Ms = percentileMs(latencies, 0.50)
	ph.P95Ms = percentileMs(latencies, 0.95)
	ph.P99Ms = percentileMs(latencies, 0.99)
	if plane := s.Plane(); plane != nil {
		batches, items, inline, _ := plane.FlushStats()
		pt := &PhaseTelemetry{FlushBatches: batches, FlushItems: items, InlineApplies: inline}
		if batches > 0 {
			pt.ItemsPerBatch = float64(items) / float64(batches)
		}
		ph.Telemetry = pt
	}
	return ph, nil
}

// percentileMs returns the q-quantile of the (unsorted) latency set in
// milliseconds, 0 when empty.
func percentileMs(lats []time.Duration, q float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(lats))
	copy(sorted, lats)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx].Microseconds()) / 1000
}

func startServer(cfg serve.Config) (*serve.Server, *serve.Client, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	s := serve.New(cfg)
	s.Start(ln)
	return s, &serve.Client{BaseURL: "http://" + ln.Addr().String()}, nil
}

func stopServer(s *serve.Server) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	s.Shutdown(ctx)
}
