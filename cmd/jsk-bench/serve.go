package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"sort"
	"time"

	"jskernel/internal/expr/runner"
	"jskernel/internal/serve"
)

// ServeReport is the JSON schema of the -serve benchmark output. It
// records two runs against live jsk-serve daemons: a sustained run
// sized to the pool, and an overload run that deliberately outruns a
// pool-1 queue-1 server. The number that matters alongside throughput
// is CorrectPct: degradation must shed load, never accuracy, so both
// runs require every successful response to byte-match the unloaded
// reference — 100% or the benchmark fails.
type ServeReport struct {
	Experiment string `json:"experiment"`
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	Sustained ServePhase `json:"sustained"`
	Overload  ServePhase `json:"overload"`
}

// ServePhase is one load phase of the serve benchmark.
type ServePhase struct {
	Pool       int `json:"pool"`
	QueueDepth int `json:"queue_depth"`
	Clients    int `json:"clients"`
	Requests   int `json:"requests"`
	Completed  int `json:"completed"`
	Shed       int `json:"shed"`
	// ShedRate is Shed / Requests: ~0 sustained, rising under overload.
	ShedRate float64 `json:"shed_rate"`
	// CorrectPct is the fraction of completed responses byte-identical
	// to the unloaded reference. Anything below 100 is a contract break.
	CorrectPct    float64 `json:"correct_pct"`
	ElapsedMs     float64 `json:"elapsed_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"p50_ms"`
	P95Ms         float64 `json:"p95_ms"`
	P99Ms         float64 `json:"p99_ms"`
}

// benchCell is the workload every benchmark request evaluates: one
// deterministic Table I cell, so correctness is plain byte equality.
func benchCell() serve.Request {
	return serve.Request{Attack: "loopscan", Defense: "jskernel-chrome", Seed: 42, Reps: 1}
}

// runServe drives the serve benchmark and writes the report.
func runServe(requests int, out string) error {
	// Unloaded reference: one warm server, one request.
	ref, err := referenceBody()
	if err != nil {
		return fmt.Errorf("reference: %w", err)
	}

	pool := runtime.GOMAXPROCS(0)
	fmt.Fprintf(os.Stderr, "jsk-bench: serve sustained (%d requests, pool %d)...\n", requests, pool)
	sustained, err := runServePhase(serve.Config{Pool: pool, QueueDepth: 4 * pool}, 2*pool, requests, ref)
	if err != nil {
		return fmt.Errorf("sustained: %w", err)
	}
	fmt.Fprintf(os.Stderr, "jsk-bench: serve overload (%d requests, pool 1, queue 1)...\n", requests)
	overload, err := runServePhase(serve.Config{Pool: 1, QueueDepth: 1}, 32, requests, ref)
	if err != nil {
		return fmt.Errorf("overload: %w", err)
	}

	rep := ServeReport{
		Experiment: "serve",
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Sustained:  sustained,
		Overload:   overload,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("sustained: %.0f req/s, p50 %.1fms p95 %.1fms p99 %.1fms, shed %.0f%%, correct %.0f%%\n",
		sustained.ThroughputRPS, sustained.P50Ms, sustained.P95Ms, sustained.P99Ms,
		sustained.ShedRate*100, sustained.CorrectPct)
	fmt.Printf("overload:  %.0f req/s, p50 %.1fms p95 %.1fms p99 %.1fms, shed %.0f%%, correct %.0f%% -> %s\n",
		overload.ThroughputRPS, overload.P50Ms, overload.P95Ms, overload.P99Ms,
		overload.ShedRate*100, overload.CorrectPct, out)

	if sustained.CorrectPct < 100 || overload.CorrectPct < 100 {
		return fmt.Errorf("served responses diverged from the reference — load shed accuracy")
	}
	if overload.ShedRate <= sustained.ShedRate {
		return fmt.Errorf("overload run shed no more than sustained (%.2f <= %.2f) — admission control not engaging",
			overload.ShedRate, sustained.ShedRate)
	}
	return nil
}

// referenceBody computes the fault-free response bytes for benchCell.
func referenceBody() ([]byte, error) {
	s, client, err := startServer(serve.Config{Pool: 1})
	if err != nil {
		return nil, err
	}
	defer stopServer(s)
	return client.EvalBytes(context.Background(), benchCell())
}

// runServePhase fires requests concurrent benchmark clients at a fresh
// server and aggregates outcome counts and client-observed latency.
func runServePhase(cfg serve.Config, clients, requests int, ref []byte) (ServePhase, error) {
	s, client, err := startServer(cfg)
	if err != nil {
		return ServePhase{}, err
	}
	defer stopServer(s)
	client.MaxAttempts = 1

	type outcome struct {
		latency time.Duration
		ok      bool
		correct bool
		shed    bool
		err     error
	}
	start := time.Now()
	results := runner.Map(clients, requests, func(int) outcome {
		t0 := time.Now()
		body, err := client.EvalBytes(context.Background(), benchCell())
		lat := time.Since(t0)
		if err != nil {
			if re, ok := err.(serve.RetryableError); ok && re.Retryable() {
				return outcome{latency: lat, shed: true}
			}
			return outcome{latency: lat, err: err}
		}
		return outcome{latency: lat, ok: true, correct: bytes.Equal(body, ref)}
	})
	elapsed := time.Since(start)

	ph := ServePhase{
		Pool:       cfg.Pool,
		QueueDepth: cfg.QueueDepth,
		Clients:    clients,
		Requests:   requests,
	}
	var latencies []time.Duration
	correct := 0
	for _, r := range results {
		switch {
		case r.err != nil:
			return ph, fmt.Errorf("untyped benchmark failure: %v", r.err)
		case r.shed:
			ph.Shed++
		default:
			ph.Completed++
			latencies = append(latencies, r.latency)
			if r.correct {
				correct++
			}
		}
	}
	ph.ShedRate = float64(ph.Shed) / float64(requests)
	if ph.Completed > 0 {
		ph.CorrectPct = float64(correct) / float64(ph.Completed) * 100
	}
	ph.ElapsedMs = float64(elapsed.Microseconds()) / 1000
	if elapsed > 0 {
		ph.ThroughputRPS = float64(ph.Completed) / elapsed.Seconds()
	}
	ph.P50Ms = percentileMs(latencies, 0.50)
	ph.P95Ms = percentileMs(latencies, 0.95)
	ph.P99Ms = percentileMs(latencies, 0.99)
	return ph, nil
}

// percentileMs returns the q-quantile of the (unsorted) latency set in
// milliseconds, 0 when empty.
func percentileMs(lats []time.Duration, q float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(lats))
	copy(sorted, lats)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx].Microseconds()) / 1000
}

func startServer(cfg serve.Config) (*serve.Server, *serve.Client, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	s := serve.New(cfg)
	s.Start(ln)
	return s, &serve.Client{BaseURL: "http://" + ln.Addr().String()}, nil
}

func stopServer(s *serve.Server) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	s.Shutdown(ctx)
}
