// Command jsk-bench measures the wall-clock effect of the parallel
// experiment runner: it renders Table I serially (-parallel 1) and on a
// worker pool, checks the two outputs are byte-identical, and writes
// the timings to a JSON report.
//
// Usage:
//
//	jsk-bench                      # quick-scale Table I, pool width = 8
//	jsk-bench -parallel 4 -reps 10
//	jsk-bench -out BENCH_parallel.json
//
// The report records the machine's CPU count: on a single-CPU host the
// pool cannot beat the serial loop (speedup ≈ 1.0 minus scheduling
// overhead), and the honest number is still worth recording — the
// byte-identity check is what proves the pool safe to use wherever
// cores exist.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"jskernel/internal/expr"
)

// Report is the JSON schema of the benchmark output.
type Report struct {
	// Experiment identifies the timed workload.
	Experiment string `json:"experiment"`
	Seed       int64  `json:"seed"`
	Reps       int    `json:"reps"`
	// CPUs is runtime.NumCPU; GOMAXPROCS the effective scheduler width.
	CPUs       int `json:"cpus"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// ParallelWidth is the worker-pool width the parallel run used.
	ParallelWidth int     `json:"parallel_width"`
	SerialMs      float64 `json:"serial_ms"`
	ParallelMs    float64 `json:"parallel_ms"`
	// Speedup is serial_ms / parallel_ms.
	Speedup float64 `json:"speedup"`
	// Identical reports the byte-identity check of the two rendered
	// tables — the determinism contract the runner exists to keep.
	Identical bool `json:"outputs_byte_identical"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "jsk-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("jsk-bench", flag.ContinueOnError)
	var (
		parallel = fs.Int("parallel", 8, "worker-pool width for the parallel run")
		reps     = fs.Int("reps", 0, "override the repetition budget")
		paper    = fs.Bool("paper", false, "paper-scale parameters (slow); default is quick scale")
		out      = fs.String("out", "BENCH_parallel.json", "report output path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := expr.QuickConfig()
	if *paper {
		cfg = expr.PaperConfig()
	}
	if *reps > 0 {
		cfg.Reps = *reps
	}

	render := func(width int) ([]byte, time.Duration, error) {
		cfg.Parallel = width
		start := time.Now()
		res, err := expr.Table1(cfg)
		elapsed := time.Since(start)
		if err != nil {
			return nil, 0, err
		}
		var buf bytes.Buffer
		if err := res.Table.Render(&buf); err != nil {
			return nil, 0, err
		}
		return buf.Bytes(), elapsed, nil
	}

	fmt.Fprintf(os.Stderr, "jsk-bench: Table I serial (seed %d, reps %d)...\n", cfg.Seed, cfg.Reps)
	serialOut, serialDur, err := render(1)
	if err != nil {
		return fmt.Errorf("serial run: %w", err)
	}
	fmt.Fprintf(os.Stderr, "jsk-bench: Table I parallel x%d...\n", *parallel)
	parOut, parDur, err := render(*parallel)
	if err != nil {
		return fmt.Errorf("parallel run: %w", err)
	}

	rep := Report{
		Experiment:    "table1",
		Seed:          cfg.Seed,
		Reps:          cfg.Reps,
		CPUs:          runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		ParallelWidth: *parallel,
		SerialMs:      float64(serialDur.Microseconds()) / 1000,
		ParallelMs:    float64(parDur.Microseconds()) / 1000,
		Identical:     bytes.Equal(serialOut, parOut),
	}
	if rep.ParallelMs > 0 {
		rep.Speedup = rep.SerialMs / rep.ParallelMs
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("serial %.0f ms, parallel(x%d) %.0f ms, speedup %.2fx on %d CPU(s); outputs identical: %v -> %s\n",
		rep.SerialMs, rep.ParallelWidth, rep.ParallelMs, rep.Speedup, rep.CPUs, rep.Identical, *out)
	if !rep.Identical {
		return fmt.Errorf("parallel output diverged from serial — determinism contract broken")
	}
	return nil
}
