// Command jsk-bench measures the wall-clock effect of the parallel
// experiment runner: it renders Table I serially (-parallel 1) and on a
// worker pool, checks the two outputs are byte-identical, and writes
// the timings to a JSON report.
//
// With -obs it instead measures the streaming observability tax: the
// Dromaeo suite with telemetry off versus fully on (trace session,
// browser observability events, profiler and detectors attached),
// checking the rendered results are byte-identical either way.
//
// With -serve it benchmarks the jsk-serve daemon: sustained-load
// throughput and client-observed latency percentiles, plus a
// deliberate overload run against a pool-1 queue-1 server showing the
// shed rate rise while every served response stays byte-identical to
// the unloaded reference.
//
// Usage:
//
//	jsk-bench                      # quick-scale Table I, pool width = 8
//	jsk-bench -parallel 4 -reps 10
//	jsk-bench -out BENCH_parallel.json
//	jsk-bench -obs                 # Dromaeo obs-on vs obs-off -> BENCH_obs.json
//	jsk-bench -serve               # jsk-serve load + overload -> BENCH_serve.json
//
// The report records the machine's CPU count: on a single-CPU host the
// pool cannot beat the serial loop (speedup ≈ 1.0 minus scheduling
// overhead), and the honest number is still worth recording — the
// byte-identity check is what proves the pool safe to use wherever
// cores exist.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"jskernel/internal/expr"
	"jskernel/internal/obs"
	"jskernel/internal/trace"
)

// Report is the JSON schema of the benchmark output.
type Report struct {
	// Experiment identifies the timed workload.
	Experiment string `json:"experiment"`
	Seed       int64  `json:"seed"`
	Reps       int    `json:"reps"`
	// CPUs is runtime.NumCPU; GOMAXPROCS the effective scheduler width.
	CPUs       int `json:"cpus"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// ParallelWidth is the worker-pool width the parallel run used.
	ParallelWidth int     `json:"parallel_width"`
	SerialMs      float64 `json:"serial_ms"`
	ParallelMs    float64 `json:"parallel_ms"`
	// Speedup is serial_ms / parallel_ms.
	Speedup float64 `json:"speedup"`
	// Identical reports the byte-identity check of the two rendered
	// tables — the determinism contract the runner exists to keep.
	Identical bool `json:"outputs_byte_identical"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "jsk-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("jsk-bench", flag.ContinueOnError)
	var (
		parallel = fs.Int("parallel", 8, "worker-pool width for the parallel run")
		reps     = fs.Int("reps", 0, "override the repetition budget")
		paper    = fs.Bool("paper", false, "paper-scale parameters (slow); default is quick scale")
		obsMode  = fs.Bool("obs", false, "measure the observability tax instead: Dromaeo with telemetry off vs fully on")
		srvMode  = fs.Bool("serve", false, "measure jsk-serve instead: sustained throughput/latency plus an overload run")
		srvReqs  = fs.Int("serve-requests", 200, "requests per serve benchmark phase (with -serve)")
		out      = fs.String("out", "", "report output path (default BENCH_parallel.json; BENCH_obs.json with -obs; BENCH_serve.json with -serve)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := expr.QuickConfig()
	if *paper {
		cfg = expr.PaperConfig()
	}
	if *reps > 0 {
		cfg.Reps = *reps
	}
	if *out == "" {
		switch {
		case *obsMode:
			*out = "BENCH_obs.json"
		case *srvMode:
			*out = "BENCH_serve.json"
		default:
			*out = "BENCH_parallel.json"
		}
	}
	if *obsMode {
		return runObs(cfg, *out)
	}
	if *srvMode {
		return runServe(*srvReqs, *out)
	}

	render := func(width int) ([]byte, time.Duration, error) {
		cfg.Parallel = width
		start := time.Now()
		res, err := expr.Table1(cfg)
		elapsed := time.Since(start)
		if err != nil {
			return nil, 0, err
		}
		var buf bytes.Buffer
		if err := res.Table.Render(&buf); err != nil {
			return nil, 0, err
		}
		return buf.Bytes(), elapsed, nil
	}

	fmt.Fprintf(os.Stderr, "jsk-bench: Table I serial (seed %d, reps %d)...\n", cfg.Seed, cfg.Reps)
	serialOut, serialDur, err := render(1)
	if err != nil {
		return fmt.Errorf("serial run: %w", err)
	}
	fmt.Fprintf(os.Stderr, "jsk-bench: Table I parallel x%d...\n", *parallel)
	parOut, parDur, err := render(*parallel)
	if err != nil {
		return fmt.Errorf("parallel run: %w", err)
	}

	rep := Report{
		Experiment:    "table1",
		Seed:          cfg.Seed,
		Reps:          cfg.Reps,
		CPUs:          runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		ParallelWidth: *parallel,
		SerialMs:      float64(serialDur.Microseconds()) / 1000,
		ParallelMs:    float64(parDur.Microseconds()) / 1000,
		Identical:     bytes.Equal(serialOut, parOut),
	}
	if rep.ParallelMs > 0 {
		rep.Speedup = rep.SerialMs / rep.ParallelMs
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("serial %.0f ms, parallel(x%d) %.0f ms, speedup %.2fx on %d CPU(s); outputs identical: %v -> %s\n",
		rep.SerialMs, rep.ParallelWidth, rep.ParallelMs, rep.Speedup, rep.CPUs, rep.Identical, *out)
	if !rep.Identical {
		return fmt.Errorf("parallel output diverged from serial — determinism contract broken")
	}
	return nil
}

// ObsReport is the JSON schema of the -obs benchmark output.
type ObsReport struct {
	Experiment string `json:"experiment"`
	Seed       int64  `json:"seed"`
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// OffMs runs Dromaeo with no telemetry; OnMs runs it with a trace
	// session, browser observability events, profiler and detectors.
	OffMs float64 `json:"obs_off_ms"`
	OnMs  float64 `json:"obs_on_ms"`
	// OverheadPct is (on - off) / off.
	OverheadPct float64 `json:"overhead_pct"`
	// Records is the number of trace records the obs-on run streamed.
	Records int `json:"records_streamed"`
	// Identical reports that the rendered Dromaeo results were
	// byte-identical with telemetry on and off — observability must
	// never perturb an experiment.
	Identical bool `json:"outputs_byte_identical"`
}

// runObs times Dromaeo with telemetry off and fully on, best of three
// runs per side, and checks result byte-identity.
func runObs(cfg expr.Config, out string) error {
	render := func(obsOn bool) ([]byte, int, time.Duration, error) {
		best := time.Duration(1<<62 - 1)
		var outBytes []byte
		var records int
		for i := 0; i < 3; i++ {
			c := cfg
			if obsOn {
				s := trace.NewSession()
				s.SetRetain(false)
				s.Attach(obs.NewProfiler())
				s.Attach(obs.NewDetectors(obs.DefaultDetectorConfig()))
				c.Trace = s
				c.Obs = true
			}
			start := time.Now()
			rep, err := expr.Dromaeo(c)
			elapsed := time.Since(start)
			if err != nil {
				return nil, 0, 0, err
			}
			var buf bytes.Buffer
			if err := rep.Table.Render(&buf); err != nil {
				return nil, 0, 0, err
			}
			outBytes = buf.Bytes()
			if obsOn {
				c.Trace.Close()
				records = c.Trace.Len()
			}
			if elapsed < best {
				best = elapsed
			}
		}
		return outBytes, records, best, nil
	}

	// One untimed pass warms allocators and caches so the first timed
	// side is not unfairly cold.
	if _, err := expr.Dromaeo(cfg); err != nil {
		return fmt.Errorf("warmup run: %w", err)
	}
	fmt.Fprintln(os.Stderr, "jsk-bench: Dromaeo with telemetry off...")
	offOut, _, offDur, err := render(false)
	if err != nil {
		return fmt.Errorf("obs-off run: %w", err)
	}
	fmt.Fprintln(os.Stderr, "jsk-bench: Dromaeo with telemetry on...")
	onOut, records, onDur, err := render(true)
	if err != nil {
		return fmt.Errorf("obs-on run: %w", err)
	}

	rep := ObsReport{
		Experiment: "dromaeo",
		Seed:       cfg.Seed,
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		OffMs:      float64(offDur.Microseconds()) / 1000,
		OnMs:       float64(onDur.Microseconds()) / 1000,
		Records:    records,
		Identical:  bytes.Equal(offOut, onOut),
	}
	if rep.OffMs > 0 {
		rep.OverheadPct = (rep.OnMs - rep.OffMs) / rep.OffMs * 100
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("obs off %.1f ms, obs on %.1f ms (%+.1f%%, %d records streamed); outputs identical: %v -> %s\n",
		rep.OffMs, rep.OnMs, rep.OverheadPct, rep.Records, rep.Identical, out)
	if !rep.Identical {
		return fmt.Errorf("telemetry changed the Dromaeo results — observability must never perturb execution")
	}
	return nil
}
