// Command jsk-sim pokes the simulated browser substrate directly: it runs
// a small demonstration scenario under a chosen defense and prints what
// the page observes, side by side with the real (virtual) time. Useful
// for understanding how the kernel's logical clock diverges from real
// execution time.
//
// Usage:
//
//	jsk-sim -scenario clock -defense jskernel-chrome
//	jsk-sim -scenario worker -defense chrome
//	jsk-sim -scenario fetch -defense fuzzyfox
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"jskernel/internal/browser"
	"jskernel/internal/defense"
	"jskernel/internal/sim"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "jsk-sim:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("jsk-sim", flag.ContinueOnError)
	var (
		scenario  = fs.String("scenario", "clock", "clock | worker | fetch | svg | policy")
		defenseID = fs.String("defense", "jskernel-chrome", "defense id")
		seed      = fs.Int64("seed", 1, "simulation seed")
		decisions = fs.Bool("decisions", false, "dump the kernel's policy-enforcement journal")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := defense.ByID(*defenseID)
	if err != nil {
		return err
	}
	env := d.NewEnv(defense.EnvOptions{Seed: *seed})
	b := env.Browser
	fmt.Fprintf(w, "scenario %q under %s (base %s)\n\n", *scenario, d.Label, d.Base)

	log := func(g *browser.Global, what string) {
		fmt.Fprintf(w, "  %-32s page clock %8.3f ms   real %10.3f ms\n",
			what, g.PerformanceNow(), sim.Time(g.Thread().Now()).Milliseconds())
	}

	switch *scenario {
	case "clock":
		b.RunScript("clock", func(g *browser.Global) {
			log(g, "start")
			g.Busy(25 * sim.Millisecond)
			log(g, "after 25ms of busy work")
			g.SetTimeout(func(gg *browser.Global) {
				log(gg, "setTimeout(10ms) callback")
				gg.RequestAnimationFrame(func(g3 *browser.Global, ts float64) {
					log(g3, fmt.Sprintf("rAF callback (ts=%.3f)", ts))
				})
			}, 10*sim.Millisecond)
		})
	case "worker":
		b.RegisterWorkerScript("demo.js", func(g *browser.Global) {
			g.SetOnMessage(func(gg *browser.Global, m browser.MessageEvent) {
				gg.Busy(30 * sim.Millisecond) // background crunch
				gg.PostMessage(fmt.Sprintf("crunched %v", m.Data))
			})
		})
		b.RunScript("worker", func(g *browser.Global) {
			log(g, "creating worker")
			wk, err := g.NewWorker("demo.js")
			if err != nil {
				fmt.Fprintf(w, "  worker creation failed: %v\n", err)
				return
			}
			wk.SetOnMessage(func(gg *browser.Global, m browser.MessageEvent) {
				log(gg, fmt.Sprintf("worker replied: %v", m.Data))
			})
			wk.PostMessage("payload")
		})
	case "fetch":
		b.Net.RegisterScript("https://site.example/data.js", 2_000_000)
		b.RunScript("fetch", func(g *browser.Global) {
			log(g, "fetch 2MB start")
			g.Fetch("https://site.example/data.js", browser.FetchOptions{}, func(r *browser.Response, err error) {
				if err != nil {
					fmt.Fprintf(w, "  fetch failed: %v\n", err)
					return
				}
				log(g, fmt.Sprintf("fetch done (opaque=%v bytes=%d)", r.Opaque, r.Bytes))
			})
		})
	case "svg":
		b.RunScript("svg", func(g *browser.Global) {
			el := g.Document().CreateElement("img")
			el.SetAttribute("width", "1200")
			el.SetAttribute("height", "1200")
			log(g, "before SVG erode filter (1200px)")
			g.ApplySVGFilter(el, "feMorphology:erode")
			log(g, "after SVG erode filter")
		})
	case "policy":
		// Trip several policy rules so the journal has content.
		b.Net.RegisterJSON("https://other.example/api.json", `{}`)
		b.RegisterWorkerScript("probe.js", func(g *browser.Global) {
			if _, err := g.XHR("https://other.example/api.json"); err != nil {
				fmt.Fprintf(w, "  worker cross-origin XHR: %v\n", err)
			}
			_ = g.ImportScripts("https://other.example/lib.js")
		})
		b.RunScript("policy", func(g *browser.Global) {
			if _, err := g.NewWorker("probe.js"); err != nil {
				fmt.Fprintf(w, "  worker: %v\n", err)
			}
		})
	default:
		return fmt.Errorf("unknown scenario %q", *scenario)
	}

	if err := b.RunFor(10 * sim.Second); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nsimulation finished at %v (%d events)\n", env.Sim.Now(), env.Sim.Steps())
	if *decisions {
		if env.Kernel == nil {
			fmt.Fprintln(w, "no kernel in this defense; no enforcement journal")
			return nil
		}
		fmt.Fprintln(w, "\npolicy enforcement journal:")
		if err := env.Kernel.WriteDecisions(w); err != nil {
			return err
		}
		fmt.Fprintf(w, "journal entries dropped: %d\n", env.Kernel.DroppedDecisions())
	}
	return nil
}
