package main

import (
	"strings"
	"testing"
)

func TestScenarios(t *testing.T) {
	for _, sc := range []string{"clock", "worker", "fetch", "svg"} {
		for _, def := range []string{"chrome", "jskernel-chrome"} {
			var b strings.Builder
			if err := run(&b, []string{"-scenario", sc, "-defense", def}); err != nil {
				t.Errorf("scenario %s under %s: %v", sc, def, err)
				continue
			}
			out := b.String()
			if !strings.Contains(out, "simulation finished") {
				t.Errorf("scenario %s under %s did not finish:\n%s", sc, def, out)
			}
			if !strings.Contains(out, "page clock") {
				t.Errorf("scenario %s produced no observations", sc)
			}
		}
	}
}

func TestClockScenarioShowsKernelFreeze(t *testing.T) {
	var b strings.Builder
	if err := run(&b, []string{"-scenario", "clock", "-defense", "jskernel-chrome"}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Under the kernel, 25ms of busy work leaves the page clock at 0.
	if !strings.Contains(out, "after 25ms of busy work") {
		t.Fatalf("missing busy line:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "after 25ms of busy work") &&
			!strings.Contains(line, "page clock    0.000 ms") {
			t.Fatalf("kernel clock advanced across busy work: %s", line)
		}
	}
}

func TestUnknownScenario(t *testing.T) {
	var b strings.Builder
	if err := run(&b, []string{"-scenario", "teleport"}); err == nil {
		t.Fatal("unknown scenario should error")
	}
}

func TestUnknownDefenseErrors(t *testing.T) {
	var b strings.Builder
	if err := run(&b, []string{"-defense", "mosaic"}); err == nil {
		t.Fatal("unknown defense should error")
	}
}

func TestPolicyScenarioWithDecisions(t *testing.T) {
	var b strings.Builder
	if err := run(&b, []string{"-scenario", "policy", "-defense", "jskernel-chrome", "-decisions"}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"policy enforcement journal:", "deny on xhr", "sanitize on importScripts"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	b.Reset()
	if err := run(&b, []string{"-scenario", "clock", "-defense", "chrome", "-decisions"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no kernel in this defense") {
		t.Error("legacy defense should report no journal")
	}
}
