// Command jsk-eval regenerates the paper's evaluation artifacts: Tables
// I–III, Figures 2–3, and the Dromaeo / worker / compatibility numbers.
//
// Usage:
//
//	jsk-eval -all                 # everything at quick scale
//	jsk-eval -all -paper          # everything at paper scale (slow)
//	jsk-eval -table 1             # one artifact
//	jsk-eval -fig 3 -csv          # figure data as CSV-ish rows
//	jsk-eval -all -parallel 8     # same bytes, 8 experiment workers
//
// Observability (all outputs byte-identical across reruns and widths):
//
//	jsk-eval -table 1 -profile out.folded   # virtual-time flamegraph
//	jsk-eval -table 1 -obs-report out/      # profiler + forensics + metrics
//	jsk-eval -table 1 -metrics out.json     # kernel metrics registry
//	jsk-eval -forensics out.json            # forensic re-judgement of Table I
//	jsk-eval -race                          # happens-before race re-judgement of Table I's CVE half
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"jskernel/internal/expr"
	"jskernel/internal/obs"
	"jskernel/internal/report"
	"jskernel/internal/trace"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "jsk-eval:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("jsk-eval", flag.ContinueOnError)
	var (
		table     = fs.Int("table", 0, "regenerate Table 1, 2 or 3")
		fig       = fs.Int("fig", 0, "regenerate Figure 2 or 3")
		dromaeo   = fs.Bool("dromaeo", false, "run the Dromaeo overhead experiment")
		workers   = fs.Bool("workers", false, "run the 16-worker creation benchmark")
		compat    = fs.Bool("compat", false, "run the Alexa DOM-similarity compatibility test")
		apps      = fs.Bool("apps", false, "run the CodePen API-specific compatibility test")
		ablation  = fs.Bool("ablation", false, "run the quantum and policy ablation studies")
		recovery  = fs.Bool("recovery", false, "run the end-to-end secret recovery experiment")
		chaos     = fs.Bool("chaos", false, "re-run the Table I matrix under seeded fault plans and diff every verdict")
		all       = fs.Bool("all", false, "run every experiment")
		paper     = fs.Bool("paper", false, "paper-scale parameters (slow); default is quick scale")
		seed      = fs.Int64("seed", 0, "override the experiment seed")
		reps      = fs.Int("reps", 0, "override the repetition budget")
		parallel  = fs.Int("parallel", 0, "worker-pool width for cell-parallel experiments: 0 = one per CPU, 1 = serial; output is byte-identical at any width")
		csv       = fs.Bool("csv", false, "emit tables as CSV")
		markdown  = fs.Bool("markdown", false, "emit tables as GitHub-flavored markdown")
		traceOut  = fs.String("trace", "", "record a kernel lifecycle trace of the run to this file (Chrome trace-event JSON, Perfetto-loadable)")
		traceText = fs.Bool("trace-text", false, "with -trace, also write the compact text rendering next to the JSON (<out>.txt)")
		profOut   = fs.String("profile", "", "write a collapsed-stack virtual-time flamegraph of the run to this file and print the profile tree")
		obsDir    = fs.String("obs-report", "", "write the streaming telemetry report (report.json + summary.txt) to this directory")
		metrOut   = fs.String("metrics", "", "write the kernel metrics registry of the run to this file as JSON")
		forOut    = fs.String("forensics", "", "re-judge the Table I matrix from the event stream alone and write the forensic findings to this file as JSON")
		race      = fs.Bool("race", false, "re-judge Table I's CVE half with the happens-before race detector and fail on any disagreement")
		raceOut   = fs.String("race-out", "", "with -race, write the full race matrix (findings, vector clocks) to this file as JSON")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := expr.QuickConfig()
	if *paper {
		cfg = expr.PaperConfig()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *reps > 0 {
		cfg.Reps = *reps
	}
	cfg.Parallel = *parallel

	// Any observability output needs a trace session on the experiments.
	// The session only retains records when the full trace is being
	// exported; the streaming consumers (profiler, detectors, validator,
	// metrics) attach as sinks and never need the buffer.
	if *traceOut != "" || *profOut != "" || *obsDir != "" || *metrOut != "" {
		cfg.Trace = trace.NewSession()
		if *traceOut == "" {
			cfg.Trace.SetRetain(false)
		}
	}
	var prof *obs.Profiler
	var det *obs.Detectors
	var sv *trace.StreamValidator
	if *profOut != "" || *obsDir != "" {
		cfg.Obs = true
		prof = obs.NewProfiler()
		cfg.Trace.Attach(prof)
	}
	if *obsDir != "" {
		det = obs.NewDetectors(obs.DefaultDetectorConfig())
		sv = trace.NewStreamValidator(false)
		cfg.Trace.Attach(det)
		cfg.Trace.Attach(sv)
	}
	if cfg.Trace != nil {
		defer func() {
			cfg.Trace.Close()
			if *traceOut != "" {
				if err := writeTrace(w, cfg.Trace, *traceOut, *traceText); err != nil {
					fmt.Fprintln(os.Stderr, "jsk-eval: trace:", err)
				}
			}
			if *profOut != "" {
				if err := writeProfile(w, prof, *profOut); err != nil {
					fmt.Fprintln(os.Stderr, "jsk-eval: profile:", err)
				}
			}
			if *metrOut != "" {
				if err := writeMetrics(w, cfg.Trace, *metrOut); err != nil {
					fmt.Fprintln(os.Stderr, "jsk-eval: metrics:", err)
				}
			}
			if *obsDir != "" {
				if err := writeObsReport(w, cfg.Trace, prof, det, sv, *obsDir); err != nil {
					fmt.Fprintln(os.Stderr, "jsk-eval: obs-report:", err)
				}
			}
		}()
	}

	emit := func(t *report.Table) error {
		switch {
		case *csv:
			return t.CSV(w)
		case *markdown:
			if err := t.Markdown(w); err != nil {
				return err
			}
		default:
			if err := t.Render(w); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintln(w)
		return err
	}

	any := false
	if *all || *table == 1 {
		any = true
		res, err := expr.Table1(cfg)
		if err != nil {
			return fmt.Errorf("table 1: %w", err)
		}
		if err := emit(res.Table); err != nil {
			return err
		}
	}
	if *all || *table == 2 {
		any = true
		res, err := expr.Table2(cfg)
		if err != nil {
			return fmt.Errorf("table 2: %w", err)
		}
		if err := emit(res.Table); err != nil {
			return err
		}
	}
	if *all || *table == 3 {
		any = true
		res, err := expr.Table3(cfg)
		if err != nil {
			return fmt.Errorf("table 3: %w", err)
		}
		if err := emit(res.Table); err != nil {
			return err
		}
	}
	if *all || *fig == 2 {
		any = true
		res, err := expr.Fig2(cfg)
		if err != nil {
			return fmt.Errorf("figure 2: %w", err)
		}
		if err := res.Figure.Render(w); err != nil {
			return err
		}
		ids := make([]string, 0, len(res.SlopeMsPerMB))
		for id := range res.SlopeMsPerMB {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Fprintf(w, "slope %-18s %8.2f ms/MB   %s\n",
				id, res.SlopeMsPerMB[id], report.Sparkline(res.ReportedMs[id]))
		}
		fmt.Fprintln(w)
	}
	if *all || *fig == 3 {
		any = true
		res, err := expr.Fig3(cfg)
		if err != nil {
			return fmt.Errorf("figure 3: %w", err)
		}
		if err := res.Figure.Render(w); err != nil {
			return err
		}
		ids := make([]string, 0, len(res.Median))
		for id := range res.Median {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Fprintf(w, "median %-18s %10.1f ms\n", id, res.Median[id])
		}
		fmt.Fprintln(w)
	}
	if *all || *dromaeo {
		any = true
		rep, err := expr.Dromaeo(cfg)
		if err != nil {
			return fmt.Errorf("dromaeo: %w", err)
		}
		if err := emit(rep.Table); err != nil {
			return err
		}
	}
	if *all || *workers {
		any = true
		rep, err := expr.WorkerBench(cfg)
		if err != nil {
			return fmt.Errorf("workers: %w", err)
		}
		if err := emit(rep.Table); err != nil {
			return err
		}
	}
	if *all || *compat {
		any = true
		rep, err := expr.Compat(cfg)
		if err != nil {
			return fmt.Errorf("compat: %w", err)
		}
		if err := emit(rep.Table); err != nil {
			return err
		}
	}
	if *all || *apps {
		any = true
		rep, err := expr.Apps(cfg)
		if err != nil {
			return fmt.Errorf("apps: %w", err)
		}
		if err := emit(rep.Table); err != nil {
			return err
		}
	}
	if *all || *ablation {
		any = true
		_, qtbl, err := expr.QuantumAblation(cfg)
		if err != nil {
			return fmt.Errorf("quantum ablation: %w", err)
		}
		if err := emit(qtbl); err != nil {
			return err
		}
		_, ptbl, err := expr.PolicyAblation(cfg)
		if err != nil {
			return fmt.Errorf("policy ablation: %w", err)
		}
		if err := emit(ptbl); err != nil {
			return err
		}
	}
	if *all || *recovery {
		any = true
		rep, err := expr.Recovery(cfg)
		if err != nil {
			return fmt.Errorf("recovery: %w", err)
		}
		if err := emit(rep.Table); err != nil {
			return err
		}
	}
	if *chaos {
		any = true
		res, err := expr.Chaos(cfg)
		if err != nil {
			return fmt.Errorf("chaos: %w", err)
		}
		if err := emit(res.Table); err != nil {
			return err
		}
		for _, pr := range res.Plans {
			for _, f := range pr.Weakened {
				fmt.Fprintf(w, "WEAKENED under %s: %s\n", pr.Plan.Name, f)
			}
			for _, f := range pr.Masked {
				fmt.Fprintf(w, "masked under %s: %s\n", pr.Plan.Name, f)
			}
		}
		if n := res.Weakened(); n > 0 {
			return fmt.Errorf("chaos: %d security verdicts weakened under fault injection", n)
		}
		fmt.Fprintf(w, "chaos: %d plans, every security verdict unchanged\n", len(res.Plans))
	}
	if *forOut != "" {
		any = true
		res, err := expr.ForensicsTable1(cfg)
		if err != nil {
			return fmt.Errorf("forensics: %w", err)
		}
		b, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return fmt.Errorf("forensics: %w", err)
		}
		if err := os.WriteFile(*forOut, append(b, '\n'), 0o644); err != nil {
			return fmt.Errorf("forensics: %w", err)
		}
		fmt.Fprintf(w, "forensics: %d cells, %d flagged -> %s\n",
			len(res.Cells), len(res.Findings()), *forOut)
		if n := len(res.Mismatches); n > 0 {
			for _, m := range res.Mismatches {
				fmt.Fprintf(w, "forensic mismatch: %s\n", m)
			}
			return fmt.Errorf("forensics: %d cells disagree with the experiment verdicts", n)
		}
	}
	if *race {
		any = true
		res, err := expr.RaceTable1(cfg)
		if err != nil {
			return fmt.Errorf("race: %w", err)
		}
		if *raceOut != "" {
			b, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				return fmt.Errorf("race: %w", err)
			}
			if err := os.WriteFile(*raceOut, append(b, '\n'), 0o644); err != nil {
				return fmt.Errorf("race: %w", err)
			}
			fmt.Fprintf(w, "race matrix -> %s\n", *raceOut)
		}
		fmt.Fprintf(w, "race: %d cells, %d flagged\n", len(res.Cells), len(res.Findings()))
		for _, c := range res.Cells {
			fmt.Fprintf(w, "  %-14s %-16s defended=%-5v races(%s)=%d total=%d\n",
				c.Row, c.Defense, c.ActualDefended, c.Channel, c.ChannelRaces, c.TotalRaces)
		}
		if n := len(res.Mismatches); n > 0 {
			for _, m := range res.Mismatches {
				fmt.Fprintf(w, "race mismatch: %s\n", m)
			}
			return fmt.Errorf("race: %d cells disagree with the experiment verdicts", n)
		}
	}
	if !any {
		fs.Usage()
		return fmt.Errorf("nothing to do: pass -all, -table N, -fig N, -chaos, or an experiment flag")
	}
	return nil
}

// writeProfile writes the collapsed-stack flamegraph and prints the
// profile tree.
func writeProfile(w io.Writer, p *obs.Profiler, out string) error {
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := p.WriteFolded(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "profile: flamegraph -> %s\n", out)
	return p.WriteTree(w)
}

// writeMetrics dumps the session's metrics registry as JSON.
func writeMetrics(w io.Writer, s *trace.Session, out string) error {
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := s.Metrics().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "metrics: registry -> %s\n", out)
	return nil
}

// writeObsReport joins profiler, detectors, metrics and validation into
// the telemetry report directory (report.json + summary.txt).
func writeObsReport(w io.Writer, s *trace.Session, prof *obs.Profiler, det *obs.Detectors, sv *trace.StreamValidator, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	rep, verr := sv.Finish()
	in := obs.ReportInput{
		Title:         "jsk-eval",
		Profiler:      prof,
		Signatures:    det.Finish(),
		Metrics:       s.Metrics(),
		Validation:    rep,
		ValidationErr: verr,
	}
	jf, err := os.Create(filepath.Join(dir, "report.json"))
	if err != nil {
		return err
	}
	if err := obs.WriteReportJSON(jf, in); err != nil {
		jf.Close()
		return err
	}
	if err := jf.Close(); err != nil {
		return err
	}
	sf, err := os.Create(filepath.Join(dir, "summary.txt"))
	if err != nil {
		return err
	}
	if err := obs.WriteReportSummary(sf, in); err != nil {
		sf.Close()
		return err
	}
	if err := sf.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "obs-report: report.json + summary.txt -> %s\n", dir)
	return obs.WriteReportSummary(w, in)
}

// writeTrace closes the session, validates it against the kernel
// lifecycle invariants, writes the Chrome trace-event JSON (plus the
// compact text rendering when asked), and prints the metrics summary.
func writeTrace(w io.Writer, s *trace.Session, out string, alsoText bool) error {
	s.Close()
	recs := s.Records()
	rep, err := trace.Validate(recs)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, recs); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if alsoText {
		tf, err := os.Create(out + ".txt")
		if err != nil {
			return err
		}
		if err := trace.WriteText(tf, recs); err != nil {
			tf.Close()
			return err
		}
		if err := tf.Close(); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "trace: %d records -> %s (validated: %d enqueued = %d dispatched + %d shed + %d cancelled + %d expired)\n",
		len(recs), out, rep.Enqueued, rep.Dispatched, rep.Shed, rep.Cancelled, rep.Expired)
	return s.Metrics().WriteSummary(w)
}
