package main

import (
	"strings"
	"testing"
)

func TestRunRequiresSelection(t *testing.T) {
	var b strings.Builder
	if err := run(&b, nil); err == nil {
		t.Fatal("no flags should be an error")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var b strings.Builder
	if err := run(&b, []string{"-bogus"}); err == nil {
		t.Fatal("bad flag should error")
	}
}

func TestRunTable3(t *testing.T) {
	var b strings.Builder
	if err := run(&b, []string{"-table", "3"}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Table III", "amazon", "JSKernel (chrome)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunDromaeoCSV(t *testing.T) {
	var b strings.Builder
	if err := run(&b, []string{"-dromaeo", "-csv"}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Test,Chrome (ms),JSKernel (ms),Overhead") {
		t.Errorf("csv header missing:\n%s", out)
	}
	if !strings.Contains(out, "dom-attr") {
		t.Error("csv missing dom-attr row")
	}
}

func TestRunFig2WithOverrides(t *testing.T) {
	var b strings.Builder
	if err := run(&b, []string{"-fig", "2", "-seed", "7", "-reps", "2"}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Figure 2") || !strings.Contains(out, "slope jskernel-chrome") {
		t.Errorf("fig2 output incomplete:\n%s", out)
	}
}

func TestRunWorkersAndApps(t *testing.T) {
	var b strings.Builder
	if err := run(&b, []string{"-workers", "-apps"}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "16 workers") || !strings.Contains(out, "Fuzzyfox") {
		t.Errorf("combined output incomplete:\n%s", out)
	}
}

func TestRunAblation(t *testing.T) {
	var b strings.Builder
	if err := run(&b, []string{"-ablation"}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Ablation A1") || !strings.Contains(out, "Ablation A2") {
		t.Errorf("ablation output incomplete:\n%s", out)
	}
}

func TestRunRemainingArtifacts(t *testing.T) {
	var b strings.Builder
	if err := run(&b, []string{"-table", "2", "-fig", "3", "-compat", "-recovery", "-markdown"}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Table II", "Figure 3", "cosine similarity", "recovery accuracy", "| --- |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("combined output missing %q", want)
		}
	}
}

func TestRunChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("full chaos matrix via CLI")
	}
	var b strings.Builder
	if err := run(&b, []string{"-chaos"}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Chaos matrix", "flaky-net", "crashy-workers", "hostile-page",
		"every security verdict unchanged",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("chaos output missing %q", want)
		}
	}
	if strings.Contains(out, "WEAKENED") {
		t.Errorf("chaos output reports weakened verdicts:\n%s", out)
	}
}

func TestRunTable1Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix via CLI")
	}
	var b strings.Builder
	if err := run(&b, []string{"-table", "1", "-reps", "2"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "CVE-2010-4576") {
		t.Error("table 1 output incomplete")
	}
}
