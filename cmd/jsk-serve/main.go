// Command jsk-serve runs the kernel as a service: an HTTP daemon that
// evaluates Table I cells — (attack, defense, seed) coordinates — on a
// bounded pool of warm, reset-instead-of-rebuilt kernel environments.
//
// Usage:
//
//	jsk-serve                         # serve on 127.0.0.1:8571
//	jsk-serve -addr :9000 -pool 8     # wider pool on another port
//	jsk-serve -telemetry              # live observability plane + /statsz metrics
//	jsk-serve -smoke                  # run the CI smoke suite and exit
//
// Endpoints: POST /v1/eval, GET /healthz, /readyz, /statsz, /versionz,
// and — with -telemetry — /metricsz (OpenMetrics), /v1/events (SSE
// stream of spans, forensic verdicts and campaign findings) and
// /ledgerz (the cross-request forensics ledger). A request:
//
//	curl -s localhost:8571/v1/eval -d '{"attack":"loopscan","defense":"jskernel-chrome","seed":42}'
//
// Overload sheds explicitly (429 + Retry-After), SIGTERM/SIGINT drains
// gracefully, and the same body+seed always returns byte-identical
// responses regardless of pool width or environment reuse.
//
// This command contains no goroutines: serving, draining and signal
// handling all live in internal/serve's audited functions.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"jskernel/internal/serve"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "jsk-serve:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("jsk-serve", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:8571", "listen address")
		pool      = fs.Int("pool", 0, "evaluation workers, each owning one warm kernel environment (0 = one per CPU)")
		queue     = fs.Int("queue", 0, "admission queue depth before 429s (0 = 4x pool)")
		deadline  = fs.Duration("deadline", 30*time.Second, "default per-request completion budget")
		reps      = fs.Int("reps", 0, "default repetition budget for timing rows (0 = 5)")
		maxReps   = fs.Int("max-reps", 0, "repetition budget cap (0 = 25)")
		drain     = fs.Duration("drain-timeout", 60*time.Second, "graceful drain bound after SIGTERM/SIGINT")
		telemetry = fs.Bool("telemetry", false, "mount the live observability plane (/metricsz, /v1/events, /ledgerz) and aggregate kernel metrics in /statsz")
		telSync   = fs.Bool("telemetry-sync", false, "disable the telemetry batching flusher, applying every item inline (benchmark baseline)")
		smoke     = fs.Bool("smoke", false, "run the service smoke suite (determinism, overload shedding, drain, telemetry) and exit")
		ledgerOut = fs.String("ledger-report", "", "with -smoke: also write the forensics ledger report JSON to this path (CI artifact)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *smoke {
		return serve.Smoke(w, *ledgerOut)
	}

	cfg := serve.Config{
		Pool:            *pool,
		QueueDepth:      *queue,
		DefaultDeadline: *deadline,
		DefaultReps:     *reps,
		MaxReps:         *maxReps,
		Telemetry:       *telemetry,
		TelemetrySync:   *telSync,
		Log:             w,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", *addr, err)
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(stop)
	return serve.New(cfg).Run(ln, stop, *drain)
}
