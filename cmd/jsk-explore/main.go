// Command jsk-explore searches the kernel's schedule space for racing
// interleavings (internal/explore): PCT randomized priorities and DPOR
// race reversals over the simulator's scheduler seam, judged by the
// streaming happens-before detector with every CVE oracle unarmed.
//
// Matrix mode explores every CVE row (or a subset) under one defense
// column and reports each discovered schedule as a minimal replay
// token:
//
//	jsk-explore -matrix
//	jsk-explore -matrix -cves CVE-2018-5092,CVE-2014-3194 -budget 4
//	jsk-explore -matrix -json -o report.json
//
// Replay mode re-executes one token and prints the reproduced findings
// — byte-identical to the live discovery, every time:
//
//	jsk-explore -replay v1:CVE-2018-5092:chrome:42:-
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"jskernel/internal/explore"
	"jskernel/internal/hb"
	"jskernel/internal/vuln"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "jsk-explore:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("jsk-explore", flag.ContinueOnError)
	var (
		matrix     = fs.Bool("matrix", false, "explore the CVE corpus and report discovered schedules")
		replay     = fs.String("replay", "", "re-execute a replay token and print the reproduced findings")
		cves       = fs.String("cves", "", "comma-separated CVE subset for -matrix (default: all 12)")
		defID      = fs.String("defense", "chrome", "defense column (a Table I ID)")
		seed       = fs.Int64("seed", 42, "root seed; every schedule derives from it")
		budget     = fs.Int("budget", 6, "PCT schedules per cell beyond the default-order baseline")
		depth      = fs.Int("depth", 3, "PCT bug-depth parameter d (d-1 priority change points)")
		dporBudget = fs.Int("dpor-budget", 12, "DPOR executions per cell for cells PCT leaves undiscovered (0 = off)")
		parallel   = fs.Int("parallel", 0, "worker-pool width (0 = one per CPU); reports are byte-identical at any width")
		asJSON     = fs.Bool("json", false, "emit the report as JSON")
		outPath    = fs.String("o", "", "also write the JSON report to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *replay != "" {
		return runReplay(w, *replay, *asJSON)
	}
	if !*matrix {
		return fmt.Errorf("pass -matrix to explore or -replay <token> to reproduce a discovery")
	}

	cfg := explore.Config{
		Seed:       *seed,
		Budget:     *budget,
		Depth:      *depth,
		DPORBudget: *dporBudget,
		Parallel:   *parallel,
		DefenseID:  *defID,
	}
	if *cves != "" {
		for _, s := range strings.Split(*cves, ",") {
			s = strings.TrimSpace(s)
			if s == "" {
				continue
			}
			cfg.CVEs = append(cfg.CVEs, vuln.CVE(s))
		}
	}
	rep, err := explore.Matrix(cfg)
	if err != nil {
		return err
	}
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		if err := writeJSON(f, rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if *asJSON {
		return writeJSON(w, rep)
	}
	printReport(w, rep)
	for _, c := range rep.Cells {
		if c.Discovery != nil && !c.Discovery.ReplayIdentical {
			return fmt.Errorf("replay of %s did not reproduce the live finding", c.Discovery.Token)
		}
	}
	return nil
}

// printReport renders the matrix result.
func printReport(w io.Writer, rep *explore.Report) {
	fmt.Fprintf(w, "schedule exploration: defense=%s seed=%d budget=%d depth=%d dpor=%d\n",
		rep.Defense, rep.Seed, rep.Budget, rep.Depth, rep.DPORBudget)
	for _, c := range rep.Cells {
		if c.Discovery == nil {
			fmt.Fprintf(w, "  %-14s %-7s undiscovered after %d schedules\n", c.CVE, c.Channel, c.Schedules)
			continue
		}
		d := c.Discovery
		fmt.Fprintf(w, "  %-14s %-7s %-7s schedule=%d replay=%v token=%s\n",
			c.CVE, c.Channel, d.Strategy, d.Schedule, d.ReplayIdentical, d.Token)
	}
	fmt.Fprintf(w, "discovered racing interleavings for %d/%d CVEs, attacks unarmed\n",
		rep.Discovered, len(rep.Cells))
}

// runReplay re-executes one token.
func runReplay(w io.Writer, token string, asJSON bool) error {
	tok, err := explore.ParseToken(token)
	if err != nil {
		return err
	}
	findings, err := explore.ReplayRun(tok)
	if err != nil {
		return err
	}
	if asJSON {
		return writeJSON(w, findings)
	}
	fmt.Fprintf(w, "replayed %s: %d findings\n", token, len(findings))
	printFindings(w, findings)
	return nil
}

func printFindings(w io.Writer, findings []hb.Finding) {
	for _, f := range findings {
		fmt.Fprintf(w, "  race run=%d %s/%d guardian=%v\n", f.Run, f.Class, f.Target, f.Guardian)
		fmt.Fprintf(w, "    first:  %s %s #%d vt=%v clock=%d\n",
			f.First.Context, f.First.Action, f.First.Seq, f.First.VT, f.First.Clock)
		fmt.Fprintf(w, "    second: %s %s #%d vt=%v clock=%d vc=%s\n",
			f.Second.Context, f.Second.Action, f.Second.Seq, f.Second.VT, f.Second.Clock, f.Second.VC)
	}
}

func writeJSON(w io.Writer, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", b)
	return err
}
