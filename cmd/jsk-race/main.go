// Command jsk-race surfaces the happens-before race analysis
// (internal/hb) over the kernel event stream.
//
// Matrix mode re-runs Table I's CVE half with a streaming detector on
// every (CVE, defense) cell and compares the race verdict — at least
// one data race on the CVE's channel target class — against the
// experiment's own exploited/defended verdict:
//
//	jsk-race                               # full matrix, fail on disagreement
//	jsk-race -json                         # same, as JSON
//
// Cell mode runs one (CVE, defense) pair, prints every finding with
// its vector-clock evidence, and can export the raw record stream or
// write the joined obs report:
//
//	jsk-race -cve CVE-2018-5092 -defense chrome
//	jsk-race -cve CVE-2018-5092 -defense chrome -export trace.jsonl
//	jsk-race -cve CVE-2018-5092 -defense chrome -report out/
//
// Replay mode re-runs the detector offline over an exported stream —
// the same records, the same findings, no simulation:
//
//	jsk-race -replay trace.jsonl
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"jskernel/internal/attack"
	"jskernel/internal/defense"
	"jskernel/internal/expr"
	"jskernel/internal/hb"
	"jskernel/internal/obs"
	"jskernel/internal/trace"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "jsk-race:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("jsk-race", flag.ContinueOnError)
	var (
		cve      = fs.String("cve", "", "run one CVE row (e.g. CVE-2018-5092)")
		def      = fs.String("defense", "", "with -cve, run one defense column (default: all)")
		seed     = fs.Int64("seed", 0, "override the experiment seed")
		parallel = fs.Int("parallel", 0, "worker-pool width for the matrix (0 = one per CPU); output is byte-identical at any width")
		asJSON   = fs.Bool("json", false, "emit results as JSON")
		export   = fs.String("export", "", "with -cve and -defense, export the cell's raw record stream to this file (JSONL, replayable)")
		replay   = fs.String("replay", "", "replay an exported record stream through the detector instead of simulating")
		report   = fs.String("report", "", "with -cve and -defense, write the joined obs report (report.json + summary.txt) to this directory")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := expr.QuickConfig()
	cfg.Reps = 3
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Parallel = *parallel

	if *replay != "" {
		return replayFile(w, *replay, *asJSON)
	}
	if *cve != "" {
		return runCells(w, cfg, *cve, *def, *export, *report, *asJSON)
	}
	if *export != "" || *report != "" {
		return fmt.Errorf("-export and -report need a single cell: pass -cve and -defense")
	}
	return runMatrix(w, cfg, *asJSON)
}

// runMatrix re-judges the full CVE half and fails on any disagreement.
func runMatrix(w io.Writer, cfg expr.Config, asJSON bool) error {
	res, err := expr.RaceTable1(cfg)
	if err != nil {
		return err
	}
	if asJSON {
		if err := writeJSON(w, res); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(w, "race matrix: %d cells, %d flagged\n", len(res.Cells), len(res.Findings()))
		for _, c := range res.Cells {
			fmt.Fprintf(w, "  %-14s %-16s defended=%-5v races(%s)=%d total=%d\n",
				c.Row, c.Defense, c.ActualDefended, c.Channel, c.ChannelRaces, c.TotalRaces)
		}
	}
	if n := len(res.Mismatches); n > 0 {
		for _, m := range res.Mismatches {
			fmt.Fprintf(w, "race mismatch: %s\n", m)
		}
		return fmt.Errorf("%d cells disagree with the experiment verdicts", n)
	}
	if !asJSON {
		fmt.Fprintln(w, "race verdicts agree with the experiment verdicts on every cell")
	}
	return nil
}

// cellResult is one cell's output in cell mode.
type cellResult struct {
	Row       string       `json:"row"`
	Defense   string       `json:"defense"`
	Defended  bool         `json:"defended"`
	Exploited bool         `json:"exploited"`
	Channel   string       `json:"channel"`
	Findings  []hb.Finding `json:"findings"`
}

// runCells runs one CVE row against one or all defenses.
func runCells(w io.Writer, cfg expr.Config, cveID, defID, export, reportDir string, asJSON bool) error {
	var row *attack.CVEAttack
	rowIdx := -1
	for i, a := range attack.CVEAttacks() {
		if string(a.CVE) == cveID {
			row, rowIdx = a, i
		}
	}
	if row == nil {
		return fmt.Errorf("unknown CVE %q", cveID)
	}
	var cols []defense.Defense
	var colIdx []int
	for i, d := range defense.TableIDefenses() {
		if defID == "" || d.ID == defID {
			cols = append(cols, d)
			colIdx = append(colIdx, i)
		}
	}
	if len(cols) == 0 {
		return fmt.Errorf("unknown defense %q", defID)
	}
	if (export != "" || reportDir != "") && len(cols) != 1 {
		return fmt.Errorf("-export and -report need a single cell: pass -defense")
	}

	channel, _ := expr.CVEChannel(row.CVE)
	var results []cellResult
	for ci, d := range cols {
		sess := trace.NewSession()
		retain := export != ""
		sess.SetRetain(retain)
		det := hb.NewDetector()
		sess.Attach(det)
		var prof *obs.Profiler
		if reportDir != "" {
			prof = obs.NewProfiler()
			sess.Attach(prof)
		}
		// Same derived seed as the matrix cell, so findings here reproduce
		// the matrix (and the checked-in goldens) exactly.
		out := attack.EvaluateCVE(row, d.WithTracer(sess), expr.RaceCellSeed(cfg, rowIdx, colIdx[ci]))
		sess.Close()
		findings := det.Findings()
		results = append(results, cellResult{
			Row: string(row.CVE), Defense: d.ID,
			Defended: out.Defended, Exploited: out.Exploited,
			Channel: channel, Findings: findings,
		})
		if export != "" {
			if err := exportRecords(sess, export); err != nil {
				return err
			}
			fmt.Fprintf(w, "exported record stream -> %s\n", export)
		}
		if reportDir != "" {
			if err := writeReport(sess, prof, findings, string(row.CVE)+"/"+d.ID, reportDir); err != nil {
				return err
			}
			fmt.Fprintf(w, "obs report -> %s\n", reportDir)
		}
	}
	if asJSON {
		return writeJSON(w, results)
	}
	for _, r := range results {
		fmt.Fprintf(w, "%s under %s: defended=%v races(%s)=%d total=%d\n",
			r.Row, r.Defense, r.Defended, r.Channel, countClass(r.Findings, r.Channel), len(r.Findings))
		printFindings(w, r.Findings)
	}
	return nil
}

// replayFile re-runs the detector over an exported record stream.
func replayFile(w io.Writer, path string, asJSON bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := trace.ReadRecords(f)
	if err != nil {
		return err
	}
	findings := hb.Replay(recs)
	if asJSON {
		return writeJSON(w, findings)
	}
	fmt.Fprintf(w, "replayed %d records: %d races\n", len(recs), len(findings))
	printFindings(w, findings)
	return nil
}

// exportRecords writes a session's retained records as JSONL.
func exportRecords(sess *trace.Session, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	rw := trace.NewRecordWriter(f)
	rw.WriteAll(sess.Records())
	if err := rw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeReport joins the race findings into the obs telemetry report.
func writeReport(sess *trace.Session, prof *obs.Profiler, findings []hb.Finding, title, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	in := obs.ReportInput{
		Title:    title,
		Profiler: prof,
		Races:    findings,
		Metrics:  sess.Metrics(),
	}
	jf, err := os.Create(filepath.Join(dir, "report.json"))
	if err != nil {
		return err
	}
	if err := obs.WriteReportJSON(jf, in); err != nil {
		jf.Close()
		return err
	}
	if err := jf.Close(); err != nil {
		return err
	}
	sf, err := os.Create(filepath.Join(dir, "summary.txt"))
	if err != nil {
		return err
	}
	if err := obs.WriteReportSummary(sf, in); err != nil {
		sf.Close()
		return err
	}
	return sf.Close()
}

func printFindings(w io.Writer, findings []hb.Finding) {
	for _, f := range findings {
		fmt.Fprintf(w, "  race run=%d %s/%d guardian=%v\n", f.Run, f.Class, f.Target, f.Guardian)
		fmt.Fprintf(w, "    first:  %s %s #%d vt=%v clock=%d\n",
			f.First.Context, f.First.Action, f.First.Seq, f.First.VT, f.First.Clock)
		fmt.Fprintf(w, "    second: %s %s #%d vt=%v clock=%d vc=%s\n",
			f.Second.Context, f.Second.Action, f.Second.Seq, f.Second.VT, f.Second.Clock, f.Second.VC)
	}
}

func countClass(findings []hb.Finding, class string) int {
	n := 0
	for _, f := range findings {
		if f.Class == class {
			n++
		}
	}
	return n
}

func writeJSON(w io.Writer, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", b)
	return err
}
