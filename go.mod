module jskernel

go 1.22
