// Package jskernel is a Go reproduction of "JSKernel: Fortifying
// JavaScript against Web Concurrency Attacks via a Kernel-Like Structure"
// (Chen & Cao, DSN 2020).
//
// The library provides, on top of a deterministic simulated browser
// substrate:
//
//   - the JSKernel itself: a kernel layer interposed between "website
//     JavaScript" (Go closures run against a Global scope) and the
//     browser's native APIs, with an event queue, a logical clock, a
//     two-stage scheduler, a dispatcher, and a thread manager;
//   - a JSON-codable security policy engine with the paper's general
//     deterministic-scheduling policy and its twelve CVE-specific
//     policies;
//   - the seven defenses the paper compares (legacy Chrome/Firefox/Edge,
//     Fuzzyfox, DeterFox, Tor Browser, Chrome Zero, JSKernel);
//   - every attack of the paper's Table I — ten implicit-clock timing
//     attacks and twelve web-concurrency CVE exploits — plus the
//     workloads (Dromaeo, Alexa, Raptor tp6, CodePen apps) and experiment
//     drivers that regenerate each table and figure.
//
// # Quick start
//
//	env := jskernel.Protected("chrome", 1)
//	env.Browser.RunScript("main", func(g *jskernel.Global) {
//	    g.SetTimeout(func(g *jskernel.Global) {
//	        fmt.Println("dispatched at logical", g.PerformanceNow(), "ms")
//	    }, 5*jskernel.Millisecond)
//	})
//	_ = env.Browser.Run()
//
// See the examples directory for runnable programs and internal/expr for
// the experiment harness behind `cmd/jsk-eval`.
package jskernel

import (
	"jskernel/internal/attack"
	"jskernel/internal/browser"
	"jskernel/internal/defense"
	"jskernel/internal/dom"
	"jskernel/internal/expr"
	"jskernel/internal/kernel"
	"jskernel/internal/policy"
	"jskernel/internal/sim"
	"jskernel/internal/vuln"
	"jskernel/internal/webnet"
)

// Version identifies the library release.
const Version = "1.0.0"

// Core simulation and browser types.
type (
	// Simulator is the deterministic discrete-event engine everything
	// runs on.
	Simulator = sim.Simulator
	// Time is a virtual timestamp in nanoseconds.
	Time = sim.Time
	// Duration is a span of virtual time in nanoseconds.
	Duration = sim.Duration

	// Browser is a simulated multi-threaded web browser instance.
	Browser = browser.Browser
	// BrowserOptions configures browser construction.
	BrowserOptions = browser.Options
	// Global is a JavaScript global scope (window or worker self).
	Global = browser.Global
	// Script is website JavaScript: a closure run against a Global.
	Script = browser.Script
	// Bindings is the native API table defenses interpose on.
	Bindings = browser.Bindings
	// Worker is the user-space view of a web worker.
	Worker = browser.Worker
	// Frame is the user-space view of an embedded iframe context.
	Frame = browser.Frame
	// MessageEvent is an onmessage payload.
	MessageEvent = browser.MessageEvent
	// FetchOptions configures a fetch request.
	FetchOptions = browser.FetchOptions
	// Response is a completed fetch result.
	Response = browser.Response
	// SharedBuffer models a SharedArrayBuffer / transferable.
	SharedBuffer = browser.SharedBuffer
	// Profile is a browser engine cost model.
	Profile = browser.Profile

	// Document is the simulated DOM document.
	Document = dom.Document
	// Element is one DOM node.
	Element = dom.Element

	// Net is the simulated network.
	Net = webnet.Net
	// NetConfig tunes the network model.
	NetConfig = webnet.Config

	// Kernel is one thread's JSKernel instance.
	Kernel = kernel.Kernel
	// KernelShared is the cross-thread kernel state for one browser.
	KernelShared = kernel.Shared
	// Policy is what the kernel consults on every intercepted call.
	Policy = kernel.Policy
	// PolicySpec is a JSON-codable policy implementation.
	PolicySpec = policy.Spec
	// PolicyRule is one condition→action rule of a policy.
	PolicyRule = policy.Rule
	// PolicyCondition selects the calls a rule applies to.
	PolicyCondition = policy.Condition

	// Defense is one of the paper's evaluated browser configurations.
	Defense = defense.Defense
	// Env is a ready-to-run (simulator, browser, registry) environment.
	Env = defense.Env
	// EnvOptions tunes environment construction.
	EnvOptions = defense.EnvOptions

	// CVE identifies a modeled vulnerability.
	CVE = vuln.CVE
	// VulnRegistry detects CVE triggering sequences on the native trace.
	VulnRegistry = vuln.Registry

	// TimingAttack is one implicit-clock attack row of Table I.
	TimingAttack = attack.TimingAttack
	// CVEAttack is one web-concurrency CVE row of Table I.
	CVEAttack = attack.CVEAttack
	// AttackOutcome is the verdict of one (attack, defense) cell.
	AttackOutcome = attack.Outcome

	// ExperimentConfig scales the paper's experiments.
	ExperimentConfig = expr.Config
)

// Virtual time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// NewSimulator returns a deterministic simulator seeded with seed.
func NewSimulator(seed int64) *Simulator { return sim.New(seed) }

// NewBrowser creates a browser on the simulator. Zero options give an
// unprotected Chrome-profile browser with the default network model.
func NewBrowser(s *Simulator, opts BrowserOptions) *Browser { return browser.New(s, opts) }

// NewKernel creates the shared kernel state for one browser under a
// policy. Wire its Install method into BrowserOptions.InstallScope so
// every JavaScript context is kernelized.
func NewKernel(p Policy) *KernelShared { return kernel.NewShared(p) }

// DeterministicPolicy returns the paper's general deterministic
// scheduling policy (§II-B1).
func DeterministicPolicy() *PolicySpec { return policy.Deterministic() }

// FullDefensePolicy returns deterministic scheduling plus all twelve
// CVE-specific policies — the configuration the paper evaluates.
func FullDefensePolicy() *PolicySpec { return policy.FullDefense() }

// PolicyForCVE returns the builtin policy defending one CVE id, e.g.
// "CVE-2018-5092" (the paper's Listing 4).
func PolicyForCVE(id string) (*PolicySpec, error) { return policy.ForCVE(id) }

// DisableSharedBuffersPolicy returns the post-Spectre hardening stance:
// deny all SharedArrayBuffer access, closing the fine-grained timer the
// kernel's serializing queue only coarsens.
func DisableSharedBuffersPolicy() *PolicySpec { return policy.DisableSharedBuffers() }

// CombinePolicies merges several policy specs; the first one's scheduling
// parameters win and rule lists concatenate in order.
func CombinePolicies(name string, specs ...*PolicySpec) *PolicySpec {
	return policy.Combine(name, specs...)
}

// ParsePolicy decodes a policy from its JSON form.
func ParsePolicy(data []byte) (*PolicySpec, error) { return policy.Parse(data) }

// TraceRecorder retains every native-layer event for offline analysis.
type TraceRecorder = browser.Recorder

// SynthFinding explains one automatically synthesized policy rule.
type SynthFinding = policy.SynthFinding

// SynthesizePolicy implements the paper's future work (§VI): given a
// recorded native-layer trace of an exploit run, it compiles a policy
// whose rules break every dangerous condition observed.
func SynthesizePolicy(name string, events []browser.TraceEvent) (*PolicySpec, []SynthFinding, error) {
	return policy.Synthesize(name, events)
}

// Protected builds a ready-to-use environment: a browser with the given
// base profile ("chrome", "firefox", "edge") fully protected by JSKernel
// with the full defense policy.
func Protected(base string, seed int64) *Env {
	return defense.JSKernel(base).NewEnv(defense.EnvOptions{Seed: seed})
}

// Legacy builds an unprotected environment with the given base profile.
func Legacy(base string, seed int64) *Env {
	d := defense.Defense{ID: base, Label: base, Base: base, Kind: defense.KindLegacy}
	return d.NewEnv(defense.EnvOptions{Seed: seed})
}

// Defenses returns the paper's evaluated defense catalog (Table I
// columns).
func Defenses() []Defense { return defense.TableIDefenses() }

// DefenseByID resolves a defense from its identifier.
func DefenseByID(id string) (Defense, error) { return defense.ByID(id) }

// TimingAttacks returns the ten implicit-clock attacks of Table I.
func TimingAttacks() []*TimingAttack { return attack.TimingAttacks() }

// CVEAttacks returns the twelve web-concurrency CVE exploits of Table I.
func CVEAttacks() []*CVEAttack { return attack.CVEAttacks() }

// AllCVEs lists the modeled CVE identifiers.
func AllCVEs() []CVE { return vuln.All() }

// NewVulnRegistry arms detectors for the given CVEs (all of them when
// none are named) over a browser's native trace.
func NewVulnRegistry(cves ...CVE) *VulnRegistry { return vuln.NewRegistry(cves...) }

// PaperExperimentConfig reproduces the published experiment scale.
func PaperExperimentConfig() ExperimentConfig { return expr.PaperConfig() }

// QuickExperimentConfig shrinks the experiments for smoke runs.
func QuickExperimentConfig() ExperimentConfig { return expr.QuickConfig() }
