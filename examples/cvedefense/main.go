// CVE defense demo: reproduces Attack Example 2 of the paper (Listing 2,
// CVE-2018-5092) — a worker fetch, a false worker termination, then an
// abort signal into the freed request — and shows how the kernel's
// scheduling policy (Listing 4) breaks the triggering sequence by holding
// the native termination until the fetch drains.
//
//	go run ./examples/cvedefense
package main

import (
	"fmt"

	"jskernel"
)

// exploit drives the Listing 2 sequence and reports whether the
// vulnerability's trigger was reached at the native layer.
func exploit(env *jskernel.Env) bool {
	b := env.Browser
	b.Net.RegisterScript("https://site.example/fetchedfile0.html", 3_000_000)

	var ctl *struct{ abort func() }
	b.RegisterWorkerScript("fetcher.js", func(g *jskernel.Global) {
		c := g.NewAbortController()
		ctl = &struct{ abort func() }{abort: c.Abort}
		// Line 5 of Listing 2: the fetch with an abort signal.
		g.Fetch("https://site.example/fetchedfile0.html",
			jskernel.FetchOptions{Signal: c.Signal()},
			func(*jskernel.Response, error) {})
		g.PostMessage("fetch-started")
	})

	b.RunScript("exploit", func(g *jskernel.Global) {
		w, err := g.NewWorker("fetcher.js")
		if err != nil {
			fmt.Println("worker:", err)
			return
		}
		w.SetOnMessage(func(*jskernel.Global, jskernel.MessageEvent) {
			w.Terminate() // the false termination, while the fetch is pending
			if ctl != nil {
				ctl.abort() // the abort signal into freed state
			}
		})
	})
	if err := b.RunFor(10 * jskernel.Second); err != nil {
		fmt.Println("run:", err)
	}
	return env.Registry.Exploited("CVE-2018-5092")
}

func main() {
	fmt.Println("CVE-2018-5092: use-after-free via fetch abort into a falsely terminated worker")
	fmt.Println()

	legacy := jskernel.Legacy("chrome", 1)
	if exploit(legacy) {
		fmt.Println("legacy Chrome:      EXPLOITED — the abort reached the freed fetch")
	} else {
		fmt.Println("legacy Chrome:      not triggered (unexpected)")
	}

	protected := jskernel.Protected("chrome", 1)
	if exploit(protected) {
		fmt.Println("Chrome + JSKernel:  EXPLOITED (unexpected)")
	} else {
		fmt.Println("Chrome + JSKernel:  defended — the kernel deferred the native terminate")
	}

	// The policy that does it, in its JSON form:
	spec, err := jskernel.PolicyForCVE("CVE-2018-5092")
	if err != nil {
		fmt.Println("policy:", err)
		return
	}
	data, err := spec.MarshalJSON()
	if err != nil {
		fmt.Println("marshal:", err)
		return
	}
	fmt.Printf("\nthe defending policy:\n%s\n", data)
}
