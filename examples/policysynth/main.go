// Policy synthesis demo: the paper's future work, working end to end.
// We run a zero-day-style exploit (CVE-2014-1488's transferable
// use-after-free) against an undefended browser while recording the
// native-layer trace, automatically synthesize a policy from the trace,
// and verify the synthesized policy defends a fresh browser.
//
//	go run ./examples/policysynth
package main

import (
	"fmt"

	"jskernel"
)

// exploit drives the CVE-2014-1488 sequence: a worker transfers a buffer
// to the main thread, is terminated (freeing the buffer with it), and the
// main thread then uses the buffer.
func exploit(b *jskernel.Browser) {
	b.RegisterWorkerScript("transfer.js", func(g *jskernel.Global) {
		buf := g.NewSharedBuffer(8)
		_ = g.SharedBufferWrite(buf, 0, 1337)
		_ = g.TransferToParent("asm-module", buf)
	})
	b.RunScript("exploit", func(g *jskernel.Global) {
		w, err := g.NewWorker("transfer.js")
		if err != nil {
			fmt.Println("worker:", err)
			return
		}
		w.SetOnMessage(func(gg *jskernel.Global, m jskernel.MessageEvent) {
			w.Terminate() // frees the buffer with the worker...
			v, err := gg.SharedBufferRead(m.Transfer, 0)
			if err != nil {
				fmt.Println("    main-thread buffer read:", err)
				return
			}
			fmt.Println("    main-thread buffer read: ok,", v)
		})
	})
	if err := b.RunFor(5 * jskernel.Second); err != nil {
		fmt.Println("run:", err)
	}
}

func main() {
	fmt.Println("step 1: run the exploit on an undefended browser, recording the native trace")
	rec := &jskernel.TraceRecorder{}
	legacy := jskernel.Legacy("chrome", 1)
	legacy.Browser.AddTracer(rec)
	exploit(legacy.Browser)
	fmt.Printf("    exploited: %v, trace: %d native events\n\n",
		legacy.Registry.Exploited("CVE-2014-1488"), rec.Len())

	fmt.Println("step 2: synthesize a policy from the trace alone")
	spec, findings, err := jskernel.SynthesizePolicy("synthesized-defense", rec.Events())
	if err != nil {
		fmt.Println("synthesize:", err)
		return
	}
	for _, f := range findings {
		fmt.Printf("    rule: on %q (%v) -> %s\n          because %s\n",
			f.Rule.When.API, f.Evidence.Kind, f.Rule.Action, f.Analysis)
	}

	fmt.Println("\nstep 3: rerun the exploit under the synthesized policy")
	shared := jskernel.NewKernel(spec)
	reg := jskernel.NewVulnRegistry()
	b := jskernel.NewBrowser(jskernel.NewSimulator(2), jskernel.BrowserOptions{
		InstallScope: shared.Install,
		Tracer:       reg,
	})
	b.Origin = "https://site.example"
	exploit(b)
	fmt.Printf("    exploited: %v\n", reg.Exploited("CVE-2014-1488"))
}
