// Quickstart: create a JSKernel-protected browser, run "website
// JavaScript" against it, and watch the kernel's logical clock hide real
// execution time.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"jskernel"
)

func main() {
	// Protected() assembles the whole stack: a deterministic simulator, a
	// Chrome-profile browser, and a kernel in every JavaScript context
	// running the paper's full defense policy.
	env := jskernel.Protected("chrome", 1)
	b := env.Browser

	// Website JavaScript is a Go closure over the global scope. All API
	// calls go through the kernel's bindings.
	b.RunScript("page", func(g *jskernel.Global) {
		fmt.Printf("page start:                 performance.now() = %6.2f ms\n", g.PerformanceNow())

		// Heavy synchronous work. On a legacy browser the clock would
		// advance by 40ms; under the kernel the logical clock is frozen
		// inside a task, so the page learns nothing.
		g.Busy(40 * jskernel.Millisecond)
		fmt.Printf("after 40ms of busy work:    performance.now() = %6.2f ms\n", g.PerformanceNow())

		// Asynchronous callbacks dispatch at their *predicted* logical
		// times: setTimeout(7ms) displays exactly 7ms, always.
		g.SetTimeout(func(gg *jskernel.Global) {
			fmt.Printf("setTimeout(7ms) callback:   performance.now() = %6.2f ms\n", gg.PerformanceNow())
		}, 7*jskernel.Millisecond)

		// DOM manipulation works as usual.
		doc := g.Document()
		h1 := doc.CreateElement("h1")
		h1.SetText("hello from user space")
		if err := g.AppendChild(doc.Body(), h1); err != nil {
			fmt.Println("append:", err)
		}

		// The bindings table is frozen: adversarial redefinition fails.
		err := g.Redefine(func(bn *jskernel.Bindings) { bn.PerformanceNow = nil })
		fmt.Printf("redefining performance.now: %v\n", err)
	})

	if err := b.Run(); err != nil {
		fmt.Println("run:", err)
		return
	}
	fmt.Printf("\nDOM: %s\n", b.Window().Document().Body().Serialize())
	fmt.Printf("simulation processed %d events in %v of virtual time\n",
		env.Sim.Steps(), env.Sim.Now())
}
