// Implicit clock demo: reproduces Attack Example 1 of the paper (Listing
// 1) — a worker spraying postMessage as an implicit clock that measures a
// secret-dependent SVG filter — against legacy Chrome and against
// JSKernel. The legacy browser leaks the image resolution; the kernel's
// deterministic scheduling reports identical counts for both secrets.
//
//	go run ./examples/implicitclock
package main

import (
	"fmt"

	"jskernel"
)

// measure runs the Listing-1 attack in one environment: a worker sprays
// ticks, the main thread performs an SVG erode filter on an image of the
// given resolution, and the attacker reads how many ticks interleaved.
func measure(env *jskernel.Env, resolution int) int {
	b := env.Browser
	b.RegisterWorkerScript("clock.js", func(g *jskernel.Global) {
		var spray func(gg *jskernel.Global)
		spray = func(gg *jskernel.Global) {
			gg.PostMessage("tick")  // Listing 1, line 4
			gg.SetTimeout(spray, 0) // keep the clock running
		}
		spray(g)
	})

	observed := -1
	b.RunScript("attack", func(g *jskernel.Global) {
		w, err := g.NewWorker("clock.js")
		if err != nil {
			fmt.Println("worker:", err)
			return
		}
		count := 0
		w.SetOnMessage(func(*jskernel.Global, jskernel.MessageEvent) { count++ })

		// Give the clock time to start ticking, then measure the secret.
		g.SetTimeout(func(gg *jskernel.Global) {
			el := gg.Document().CreateElement("img")
			el.SetAttribute("width", fmt.Sprint(resolution))
			el.SetAttribute("height", fmt.Sprint(resolution))

			before := count
			for i := 0; i < 20; i++ {
				gg.ApplySVGFilter(el, "feMorphology:erode") // the secret op
			}
			gg.SetTimeout(func(*jskernel.Global) {
				observed = count - before // queued ticks drained first
			}, 0)
		}, 30*jskernel.Millisecond)
	})
	if err := b.RunFor(2 * jskernel.Second); err != nil {
		fmt.Println("run:", err)
	}
	return observed
}

func main() {
	fmt.Println("Listing 1: worker postMessage as an implicit clock measuring an SVG filter")
	fmt.Println()
	fmt.Printf("%-22s %16s %16s %s\n", "browser", "ticks (200px)", "ticks (1200px)", "verdict")
	for _, setup := range []struct {
		name string
		env  func(seed int64) *jskernel.Env
	}{
		{"legacy Chrome", func(seed int64) *jskernel.Env { return jskernel.Legacy("chrome", seed) }},
		{"Chrome + JSKernel", func(seed int64) *jskernel.Env { return jskernel.Protected("chrome", seed) }},
	} {
		low := measure(setup.env(1), 200)
		high := measure(setup.env(2), 1200)
		verdict := "LEAKS: resolutions distinguishable"
		if low == high {
			verdict = "defended: counts identical"
		}
		fmt.Printf("%-22s %16d %16d %s\n", setup.name, low, high, verdict)
	}
}
