// Loopscan demo (Vila & Köpf [11]): an attacker page monitors the shared
// main-thread event loop to fingerprint which site is loading in another
// context. On a legacy browser the maximum event interval differs per
// site; under JSKernel the attacker observes a constant one-quantum
// interval no matter what else the event loop is doing.
//
//	go run ./examples/loopscan
package main

import (
	"fmt"

	"jskernel"
	"jskernel/internal/attack"
	"jskernel/internal/defense"
)

func main() {
	fmt.Println("Loopscan: inferring the co-resident site from event-loop contention")
	fmt.Println()
	fmt.Printf("%-22s %18s %18s %s\n", "browser", "gap: google (ms)", "gap: youtube (ms)", "verdict")

	for _, d := range []defense.Defense{defense.Chrome(), defense.JSKernel("chrome")} {
		gaps := make(map[string]float64, 2)
		for i, site := range []string{"google", "youtube"} {
			env := d.NewEnv(defense.EnvOptions{Seed: int64(10 + i)})
			ms, err := attack.MeasureLoopscanGapMs(env, site)
			if err != nil {
				fmt.Println("measure:", err)
				return
			}
			gaps[site] = ms
		}
		verdict := "LEAKS: sites distinguishable"
		if gaps["google"] == gaps["youtube"] {
			verdict = "defended: constant quantum"
		}
		fmt.Printf("%-22s %18.2f %18.2f %s\n", d.Label, gaps["google"], gaps["youtube"], verdict)
	}

	fmt.Println()
	fmt.Printf("The kernel's scheduler spaces every observable event one logical\n"+
		"quantum (%v) apart, so event-loop contention is invisible.\n", jskernel.Duration(jskernel.Millisecond))
}
