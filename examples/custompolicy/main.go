// Custom policy demo: write a JSKernel security policy in its JSON form,
// parse it, install it in a browser, and watch it veto calls. The policy
// below blocks all worker-originated cross-origin XHR (the paper's
// CVE-2013-1714 rule) and denies IndexedDB in private browsing, on top of
// deterministic scheduling.
//
//	go run ./examples/custompolicy
package main

import (
	"fmt"

	"jskernel"
)

const policyJSON = `{
  "name": "my-site-policy",
  "description": "deterministic scheduling + worker origin checks",
  "deterministic": true,
  "quantumMicros": 1000,
  "loadPredictionMicros": 10000,
  "rules": [
    {
      "when": {"api": "xhr", "inWorker": true, "crossOrigin": true},
      "action": "deny",
      "reason": "check origins for all requests coming from a web worker",
      "cve": "CVE-2013-1714"
    },
    {
      "when": {"api": "indexedDB.open", "privateMode": true},
      "action": "deny",
      "reason": "private browsing must not touch persistent state"
    }
  ]
}`

func main() {
	spec, err := jskernel.ParsePolicy([]byte(policyJSON))
	if err != nil {
		fmt.Println("parse policy:", err)
		return
	}
	fmt.Printf("loaded policy %q with %d rules\n\n", spec.PolicyName, len(spec.Rules))

	// Assemble a browser with this policy in every JavaScript context.
	s := jskernel.NewSimulator(1)
	shared := jskernel.NewKernel(spec)
	b := jskernel.NewBrowser(s, jskernel.BrowserOptions{InstallScope: shared.Install})
	b.Origin = "https://myapp.example"
	b.Net.RegisterJSON("https://other.example/secret.json", `{"token":"s3cr3t"}`)
	b.Net.RegisterJSON("https://myapp.example/data.json", `{"ok":true}`)

	b.RegisterWorkerScript("api-client.js", func(g *jskernel.Global) {
		if body, err := g.XHR("https://myapp.example/data.json"); err == nil {
			fmt.Println("worker same-origin XHR:    allowed ->", body)
		} else {
			fmt.Println("worker same-origin XHR:    ", err)
		}
		if _, err := g.XHR("https://other.example/secret.json"); err != nil {
			fmt.Println("worker cross-origin XHR:   denied ->", err)
		} else {
			fmt.Println("worker cross-origin XHR:   allowed (policy failed!)")
		}
	})

	b.RunScript("main", func(g *jskernel.Global) {
		if _, err := g.NewWorker("api-client.js"); err != nil {
			fmt.Println("worker:", err)
		}
	})
	if err := b.Run(); err != nil {
		fmt.Println("run:", err)
	}

	// The same policy denies private-mode IndexedDB.
	s2 := jskernel.NewSimulator(2)
	shared2 := jskernel.NewKernel(spec)
	priv := jskernel.NewBrowser(s2, jskernel.BrowserOptions{
		InstallScope: shared2.Install,
		PrivateMode:  true,
	})
	priv.RunScript("private-tab", func(g *jskernel.Global) {
		if _, err := g.IndexedDBOpen("supercookie"); err != nil {
			fmt.Println("private-mode IndexedDB:    denied ->", err)
		} else {
			fmt.Println("private-mode IndexedDB:    allowed (policy failed!)")
		}
	})
	if err := priv.Run(); err != nil {
		fmt.Println("run:", err)
	}
}
